//! Packed, register-tiled general matrix–matrix multiply with runtime-
//! selected SIMD micro-kernels and intra-rank threading.
//!
//! The kernels here are the single hot spot of the whole training pipeline:
//! every convolution forward/backward pass lowers to one of them (see
//! [`crate::im2col`]). The architecture is two-level (ISSUE 6):
//!
//! * **Instruction level** — a [`KernelPath`] chosen once per process
//!   ([`kernel_path`]): explicit AVX-512 or AVX2+FMA micro-kernels from
//!   [`crate::simd`], or the portable scalar micro-kernel in this module
//!   (whose `f64::mul_add` chains the repo-level `.cargo/config.toml`
//!   lowers to FMA). `PDEML_KERNEL=scalar|simd` selects for A/B runs;
//!   [`force_kernel_path`] overrides for benches.
//! * **Thread level** — the driver's macro-loops fan out over
//!   [`crate::pool`]: batched calls chunk per sample, single-sample calls
//!   chunk per [`NC`]-column block. Each C element is written by exactly
//!   one chunk with a fixed operation order, so results are bit-for-bit
//!   identical at every thread budget.
//!
//! Operand handling depends on the layout: row-major B (`Trans::N`) is read
//! **in place** by the SIMD paths and by the dedicated small-`m` scalar edge
//! kernel (packing B costs as much as the FMA work at our shapes), while
//! `Trans::T` operands keep the classic packed-strip scheme — the
//! transposition happens for free during packing. A is always packed into
//! `mr`-interleaved row panels ([`KC`]-blocked, L2-resident).
//!
//! **Accumulation-order contract:** every path computes each C element as a
//! `p`-ascending fused-multiply-add chain from 0.0 within a KC block, added
//! into C once per block. Tile shape, packing, threading and vector width
//! all preserve that per-element chain, so *all* paths agree bitwise —
//! asserted by `tests/kernel_paths.rs`. (The documented fallback, a ≤1e-12
//! relative tolerance, is retained in the test helper for future kernels
//! that reassociate; today nothing needs it.)
//!
//! Pack buffers live in thread-local storage and are reused across calls,
//! so steady-state GEMM performs no heap allocation — including on pool
//! workers, each of which owns its own pack buffers. Every driver call
//! records FLOPs, call counts, kernel nanoseconds and packing traffic in
//! [`crate::perf`].

use crate::{perf, pool, Matrix};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Scalar micro-tile rows: how many rows of C the scalar micro-kernel owns.
const MR: usize = 4;
/// Micro-tile columns; also the packed B strip width for every path.
const NR: usize = 8;
/// Shared-dimension block: one packed A panel (`KC × mr`) stays L1/L2
/// resident. Identical across kernel paths — KC blocking is part of the
/// accumulation-order contract.
const KC: usize = 256;
/// Column block: unit of B packing *and* of intra-rank column chunking
/// (`KC × NC` ≤ 512 KiB stays L2-resident; 256 is a multiple of every
/// tile width, so chunk boundaries never split a tile).
const NC: usize = 256;

thread_local! {
    /// Packed-A scratch, owned by the driver thread for the whole call.
    static A_BUF: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
    /// Packed-B scratch, borrowed per column chunk on whichever thread
    /// (caller or pool worker) runs the chunk.
    static B_BUF: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

// ---------------------------------------------------------------------------
// Kernel-path selection
// ---------------------------------------------------------------------------

/// Which micro-kernel family the driver dispatches to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelPath {
    /// Portable Rust micro-kernel (auto-vectorized under `-C
    /// target-cpu=native`, plain f64 otherwise).
    Scalar,
    /// Explicit AVX2+FMA intrinsics (4-row tiles).
    Avx2,
    /// Explicit AVX-512F intrinsics (8-row tiles, masked edges).
    Avx512,
}

impl KernelPath {
    /// Stable lowercase label, as printed in CLI headers and bench rows.
    pub fn label(self) -> &'static str {
        match self {
            KernelPath::Scalar => "scalar",
            KernelPath::Avx2 => "avx2",
            KernelPath::Avx512 => "avx512",
        }
    }

    /// Whether the running CPU can execute this path.
    pub fn supported(self) -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            match self {
                KernelPath::Scalar => true,
                KernelPath::Avx2 => {
                    is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
                }
                KernelPath::Avx512 => is_x86_feature_detected!("avx512f"),
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            self == KernelPath::Scalar
        }
    }
}

/// Best path the running CPU supports.
fn best_supported() -> KernelPath {
    if KernelPath::Avx512.supported() {
        KernelPath::Avx512
    } else if KernelPath::Avx2.supported() {
        KernelPath::Avx2
    } else {
        KernelPath::Scalar
    }
}

/// Parses `PDEML_KERNEL` (+ runtime feature detection), once per process.
fn detect() -> KernelPath {
    match std::env::var("PDEML_KERNEL").as_deref() {
        Err(_) | Ok("simd") => best_supported(),
        Ok("scalar") => KernelPath::Scalar,
        Ok(explicit @ ("avx2" | "avx512")) => {
            let path = if explicit == "avx2" {
                KernelPath::Avx2
            } else {
                KernelPath::Avx512
            };
            assert!(
                path.supported(),
                "PDEML_KERNEL={explicit} requested but this CPU does not support it; \
                 use PDEML_KERNEL=simd to auto-select the best available path"
            );
            path
        }
        Ok(other) => panic!(
            "PDEML_KERNEL={other:?} is not a kernel path; \
             valid values: scalar, simd (auto), avx2, avx512"
        ),
    }
}

/// Bench/test override: 0 = none, else `KernelPath as u8 + 1`.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// Overrides the kernel path process-wide (benches and the path-equivalence
/// tests use this to compare paths inside one process, where the
/// `PDEML_KERNEL` choice is already frozen). `None` restores the detected
/// path. Safe at any time: all paths produce bit-identical results, so
/// switching mid-run only changes speed.
///
/// # Panics
/// If the CPU does not support the requested path.
pub fn force_kernel_path(path: Option<KernelPath>) {
    let code = match path {
        None => 0,
        Some(p) => {
            assert!(
                p.supported(),
                "force_kernel_path({p:?}): not supported by this CPU"
            );
            p as u8 + 1
        }
    };
    FORCED.store(code, Ordering::Release);
}

/// The kernel path in effect: a [`force_kernel_path`] override if set, else
/// the cached `PDEML_KERNEL` / feature-detection choice.
pub fn kernel_path() -> KernelPath {
    match FORCED.load(Ordering::Acquire) {
        1 => KernelPath::Scalar,
        2 => KernelPath::Avx2,
        3 => KernelPath::Avx512,
        _ => *{
            static DETECTED: OnceLock<KernelPath> = OnceLock::new();
            DETECTED.get_or_init(detect)
        },
    }
}

/// Packed A panel height for this path/shape: AVX-512 widens to 8 rows
/// (16 zmm accumulators) except for `m ≤ 4`, where a 4-row panel keeps the
/// register file on live data (the layer-3 edge case).
fn panel_rows(path: KernelPath, m: usize) -> usize {
    match path {
        KernelPath::Avx512 if m > MR => 8,
        _ => MR,
    }
}

/// Operand layout: `N` means the slice stores the logical matrix row-major,
/// `T` means it stores the transpose (so packing walks it column-wise).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Trans {
    N,
    T,
}

/// Packs every `mr`-row panel of the logical `m × k` matrix A for the
/// shared-dimension block `p0 .. p0+kc` into `buf`, zero-padding the last
/// panel. Layout: panel `ip` at `buf[ip*kc*mr..]`, element `(p, r)` at
/// `p*mr + r`. Full 8-row `Trans::N` panels on the AVX-512 path transpose
/// in registers ([`crate::simd::pack_a8_n_512`]); packing is pure data
/// movement either way, so the layout (and every downstream result) is
/// identical.
#[allow(clippy::too_many_arguments)]
fn pack_a_block(
    path: KernelPath,
    op: Trans,
    a: &[f64],
    m: usize,
    k: usize,
    p0: usize,
    kc: usize,
    mr: usize,
    buf: &mut [f64],
) {
    let m_panels = m.div_ceil(mr);
    for ip in 0..m_panels {
        let i0 = ip * mr;
        let mr_eff = mr.min(m - i0);
        let panel = &mut buf[ip * kc * mr..][..kc * mr];
        match op {
            Trans::N => {
                #[cfg(target_arch = "x86_64")]
                if path == KernelPath::Avx512 && mr == 8 && mr_eff == 8 {
                    // SAFETY: AVX-512 is the selected (detected) path and
                    // the panel is full, so all 8 source rows exist.
                    unsafe { crate::simd::pack_a8_n_512(a, k, i0, p0, kc, panel) };
                    continue;
                }
                #[cfg(not(target_arch = "x86_64"))]
                let _ = path;
                // a[(i0+r)*k + p0+p] → panel[p*mr + r]
                if mr_eff < mr {
                    panel.fill(0.0);
                }
                for r in 0..mr_eff {
                    let row = &a[(i0 + r) * k + p0..][..kc];
                    for (p, &v) in row.iter().enumerate() {
                        panel[p * mr + r] = v;
                    }
                }
            }
            Trans::T => {
                // a stored k × m: a[(p0+p)*m + i0+r] → panel[p*mr + r]
                for p in 0..kc {
                    let src = &a[(p0 + p) * m + i0..][..mr_eff];
                    let dst = &mut panel[p * mr..][..mr];
                    dst[..mr_eff].copy_from_slice(src);
                    dst[mr_eff..].fill(0.0);
                }
            }
        }
    }
}

/// Packs a chunk of B — columns `jc .. jc+nc_eff`, shared rows
/// `p0 .. p0+kc` — into `buf` as `ceil(nc_eff / NR)` NR-interleaved strips
/// (strip `js` at `buf[js*kc*NR..]`, element `(p, c)` at `p*NR + c`), zero-
/// padding the last strip.
///
/// For `Trans::N` (`k × n` slice) each source row contributes one contiguous
/// `nc_eff`-wide run (`copy_from_slice`, i.e. vector moves), scattered
/// across the strips; for `Trans::T` (`n × k` slice) the transposition
/// happens here, walking contiguous columns.
#[allow(clippy::too_many_arguments)]
fn pack_b_chunk(
    op: Trans,
    b: &[f64],
    k: usize,
    n: usize,
    p0: usize,
    kc: usize,
    jc: usize,
    nc_eff: usize,
    buf: &mut [f64],
) {
    let full = nc_eff / NR;
    let rem = nc_eff % NR;
    match op {
        Trans::N => {
            // b[(p0+p)*n + jc+c] → strip[c/NR][p*NR + c%NR]
            for p in 0..kc {
                let src = &b[(p0 + p) * n + jc..][..nc_eff];
                for js in 0..full {
                    let dst = &mut buf[js * kc * NR + p * NR..][..NR];
                    dst.copy_from_slice(&src[js * NR..][..NR]);
                }
                if rem > 0 {
                    let dst = &mut buf[full * kc * NR + p * NR..][..NR];
                    dst[..rem].copy_from_slice(&src[full * NR..]);
                    dst[rem..].fill(0.0);
                }
            }
        }
        Trans::T => {
            // b stored n × k: b[(jc+c)*k + p0+p] → strip[c/NR][p*NR + c%NR]
            if rem > 0 {
                buf[full * kc * NR..][..kc * NR].fill(0.0);
            }
            for c in 0..nc_eff {
                let col = &b[(jc + c) * k + p0..][..kc];
                let (js, cr) = (c / NR, c % NR);
                let strip = &mut buf[js * kc * NR..][..kc * NR];
                for (p, &v) in col.iter().enumerate() {
                    strip[p * NR + cr] = v;
                }
            }
        }
    }
}

/// Accumulator write-back: adds the live `mr_eff × nr_eff` corner of the
/// register tile into C (base pointer + row stride, so concurrent chunks
/// can write disjoint column ranges without materializing overlapping
/// `&mut` slices).
///
/// # Safety
/// `c` must be valid for the rows/columns addressed, and no other thread
/// may concurrently touch those elements.
#[inline(always)]
unsafe fn write_back(
    acc: &[[f64; NR]; MR],
    c: *mut f64,
    i0: usize,
    j0: usize,
    mr_eff: usize,
    nr_eff: usize,
    ldc: usize,
) {
    for (r, acc_row) in acc.iter().enumerate().take(mr_eff) {
        let row = unsafe { std::slice::from_raw_parts_mut(c.add((i0 + r) * ldc + j0), nr_eff) };
        for (dst, &v) in row.iter_mut().zip(&acc_row[..nr_eff]) {
            *dst += v;
        }
    }
}

/// The scalar register-tiled core: `C[i0.., j0..] += Ap · Bp` for one packed
/// A panel (`kc × MR`) against one packed B strip (`kc × NR`). The
/// accumulator tile lives entirely in locals (it compiles to 8 packed-FMA
/// chains under native codegen); edge tiles compute the full micro-tile on
/// the zero padding and clip only the write-back.
///
/// # Safety
/// See [`write_back`].
#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn micro_kernel(
    ap: &[f64],
    bp: &[f64],
    c: *mut f64,
    i0: usize,
    j0: usize,
    mr_eff: usize,
    nr_eff: usize,
    ldc: usize,
) {
    let mut acc = [[0.0f64; NR]; MR];
    // `chunks_exact` + `zip` lets the compiler drop every bounds check in the
    // kc loop; both panels advance in lockstep, one micro-tile rank-1 update
    // per step. The fixed-size reborrows below are what lets the tile update
    // compile to packed FMA: with `[f64; NR]` operands the whole inner loop
    // unrolls into straight-line vector code.
    for (a_col, b_row) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        let a_col: &[f64; MR] = a_col.try_into().unwrap();
        let b_row: &[f64; NR] = b_row.try_into().unwrap();
        for r in 0..MR {
            let av = a_col[r];
            for j in 0..NR {
                acc[r][j] = av.mul_add(b_row[j], acc[r][j]);
            }
        }
    }
    unsafe { write_back(&acc, c, i0, j0, mr_eff, nr_eff, ldc) };
}

/// Dedicated scalar edge kernel for `m ≤ MR` against row-major B (the
/// layer-3 shape): B is read in place — with a single A panel there is no
/// packing to amortize — and the C tile is held in *registers* across the
/// whole KC block, unlike the old `small_m_kernel`, which streamed C
/// through L1 once per shared-dimension step and capped layer 3 at ~6
/// GFLOP/s. The accumulation chain is identical to [`micro_kernel`]'s.
///
/// # Safety
/// See [`write_back`]; `b` must hold the sample's `k × n` matrix.
#[allow(clippy::too_many_arguments)]
unsafe fn scalar_edge_block(
    m: usize,
    n: usize,
    ap: &[f64],
    kc: usize,
    b: &[f64],
    p0: usize,
    c: *mut f64,
    j_lo: usize,
    j_hi: usize,
) {
    let mut j0 = j_lo;
    while j0 < j_hi {
        let nr_eff = NR.min(j_hi - j0);
        let mut acc = [[0.0f64; NR]; MR];
        if nr_eff == NR {
            for (p, a_col) in ap.chunks_exact(MR).take(kc).enumerate() {
                let a_col: &[f64; MR] = a_col.try_into().unwrap();
                let b_row: &[f64; NR] = b[(p0 + p) * n + j0..][..NR].try_into().unwrap();
                for r in 0..MR {
                    let av = a_col[r];
                    for j in 0..NR {
                        acc[r][j] = av.mul_add(b_row[j], acc[r][j]);
                    }
                }
            }
        } else {
            for (p, a_col) in ap.chunks_exact(MR).take(kc).enumerate() {
                let b_row = &b[(p0 + p) * n + j0..][..nr_eff];
                for r in 0..MR {
                    let av = a_col[r];
                    for (j, &bv) in b_row.iter().enumerate() {
                        acc[r][j] = av.mul_add(bv, acc[r][j]);
                    }
                }
            }
        }
        unsafe { write_back(&acc, c, 0, j0, m, nr_eff, n) };
        j0 += NR;
    }
}

/// Packed-strip sweep of C columns `j_lo .. j_hi` for one sample and one KC
/// block: B chunks are packed [`NC`] columns at a time into *this thread's*
/// pack buffer (caller or pool worker alike), then swept strip by strip by
/// every A panel while cache-hot.
///
/// # Safety
/// See [`write_back`]; `abuf` must hold `ceil(m/mr)` packed panels.
#[allow(clippy::too_many_arguments)]
unsafe fn packed_block(
    path: KernelPath,
    op_b: Trans,
    m: usize,
    k: usize,
    n: usize,
    abuf: &[f64],
    mr: usize,
    kc: usize,
    p0: usize,
    b: &[f64],
    c: *mut f64,
    j_lo: usize,
    j_hi: usize,
) {
    let m_panels = m.div_ceil(mr);
    B_BUF.with(|bb| {
        let mut bbuf = bb.borrow_mut();
        let need = (NC / NR) * kc * NR;
        if bbuf.len() < need {
            bbuf.resize(need, 0.0);
        }
        for jc in (j_lo..j_hi).step_by(NC) {
            let nc_eff = NC.min(j_hi - jc);
            pack_b_chunk(op_b, b, k, n, p0, kc, jc, nc_eff, &mut bbuf);
            for js in 0..nc_eff.div_ceil(NR) {
                let strip = &bbuf[js * kc * NR..][..kc * NR];
                let j0 = jc + js * NR;
                let nr_eff = NR.min(j_hi - j0);
                for ip in 0..m_panels {
                    let ap = &abuf[ip * kc * mr..][..kc * mr];
                    let (i0, mr_eff) = (ip * mr, mr.min(m - ip * mr));
                    match path {
                        // SAFETY (all arms): disjoint C tiles, panels sized
                        // by the driver, SIMD paths feature-checked at
                        // selection time.
                        KernelPath::Scalar => unsafe {
                            micro_kernel(ap, strip, c, i0, j0, mr_eff, nr_eff, n)
                        },
                        #[cfg(target_arch = "x86_64")]
                        KernelPath::Avx2 => unsafe {
                            crate::simd::packed_strip_avx2(
                                ap, strip, kc, c, i0, j0, mr_eff, nr_eff, n,
                            )
                        },
                        #[cfg(target_arch = "x86_64")]
                        KernelPath::Avx512 => unsafe {
                            crate::simd::packed_strip_512(
                                ap, mr, strip, kc, c, i0, j0, mr_eff, nr_eff, n,
                            )
                        },
                        #[cfg(not(target_arch = "x86_64"))]
                        _ => unreachable!("SIMD kernel paths are x86_64-only"),
                    }
                }
            }
        }
    });
}

/// One sample × one KC block × one column range, dispatched to the selected
/// kernel family. This is the unit of work a pool chunk executes.
///
/// # Safety
/// `c` must point at the sample's `m × n` output and no other thread may
/// write columns `j_lo .. j_hi` of it; `abuf` must be packed with `mr`-row
/// panels for this block; SIMD paths require their CPU features (guaranteed
/// by [`kernel_path`]).
#[allow(clippy::too_many_arguments)]
unsafe fn sample_block(
    path: KernelPath,
    op_b: Trans,
    m: usize,
    k: usize,
    n: usize,
    abuf: &[f64],
    mr: usize,
    kc: usize,
    p0: usize,
    b: &[f64],
    c: *mut f64,
    j_lo: usize,
    j_hi: usize,
) {
    match op_b {
        Trans::N => match path {
            KernelPath::Scalar if m <= MR => unsafe {
                scalar_edge_block(m, n, abuf, kc, b, p0, c, j_lo, j_hi)
            },
            KernelPath::Scalar => unsafe {
                packed_block(path, op_b, m, k, n, abuf, mr, kc, p0, b, c, j_lo, j_hi)
            },
            #[cfg(target_arch = "x86_64")]
            KernelPath::Avx2 => unsafe {
                crate::simd::direct_block_avx2(
                    abuf,
                    m,
                    kc,
                    b.as_ptr().add(p0 * n),
                    n,
                    c,
                    j_lo,
                    j_hi,
                )
            },
            #[cfg(target_arch = "x86_64")]
            KernelPath::Avx512 => unsafe {
                crate::simd::direct_block_512(
                    abuf,
                    mr,
                    m,
                    kc,
                    b.as_ptr().add(p0 * n),
                    n,
                    c,
                    j_lo,
                    j_hi,
                )
            },
            #[cfg(not(target_arch = "x86_64"))]
            _ => unreachable!("SIMD kernel paths are x86_64-only"),
        },
        Trans::T => unsafe {
            packed_block(path, op_b, m, k, n, abuf, mr, kc, p0, b, c, j_lo, j_hi)
        },
    }
}

use crate::pool::SendPtr;

/// Shared driver behind every public entry point.
///
/// Computes `C_s += op_a(A) · op_b(B_s)` for `samples` consecutive
/// `k × n` / `m × n` operand pairs in `b_all` / `c_all`, sharing one packed
/// copy of A across all samples. The batched conv path uses `samples > 1` to
/// amortize A packing over a whole mini-batch; the plain entry points pass
/// `samples == 1`.
///
/// Loop order: the shared dimension is blocked by [`KC`] and A packed once
/// per block. Inside the block the work fans out over [`crate::pool`]:
/// batched calls run one chunk per sample, single-sample calls one chunk
/// per [`NC`]-column range — both partitions write disjoint C regions, and
/// the per-element operation order is independent of the partition, so
/// every thread budget produces identical bits.
#[allow(clippy::too_many_arguments)]
fn gemm_driver(
    op_a: Trans,
    op_b: Trans,
    samples: usize,
    m: usize,
    k: usize,
    n: usize,
    a: &[f64],
    b_all: &[f64],
    c_all: &mut [f64],
) {
    if samples == 0 || m == 0 || n == 0 {
        return;
    }
    let t0 = Instant::now();
    let path = kernel_path();
    let mr = panel_rows(path, m);
    let m_panels = m.div_ceil(mr);
    A_BUF.with(|ab| {
        let mut abuf = ab.borrow_mut();
        for p0 in (0..k).step_by(KC) {
            let kc = KC.min(k - p0);
            if abuf.len() < m_panels * kc * mr {
                abuf.resize(m_panels * kc * mr, 0.0);
            }
            pack_a_block(path, op_a, a, m, k, p0, kc, mr, &mut abuf);
            let abuf: &[f64] = &abuf[..m_panels * kc * mr];
            let c_base = SendPtr(c_all.as_mut_ptr());
            if samples > 1 {
                pool::run(samples, &|s| {
                    // Bind the wrapper whole so closure capture keeps the
                    // `Send + Sync` `SendPtr`, not its raw-pointer field.
                    #[allow(clippy::redundant_locals)]
                    let c_base = c_base;
                    let b = &b_all[s * k * n..][..k * n];
                    // SAFETY: chunk `s` owns sample `s`'s C region.
                    unsafe {
                        sample_block(
                            path,
                            op_b,
                            m,
                            k,
                            n,
                            abuf,
                            mr,
                            kc,
                            p0,
                            b,
                            c_base.0.add(s * m * n),
                            0,
                            n,
                        )
                    };
                });
            } else {
                pool::run(n.div_ceil(NC), &|ci| {
                    // Whole-value rebind for disjoint capture (see above).
                    #[allow(clippy::redundant_locals)]
                    let c_base = c_base;
                    let j_lo = ci * NC;
                    let j_hi = (j_lo + NC).min(n);
                    // SAFETY: chunk `ci` owns columns `j_lo..j_hi` alone.
                    unsafe {
                        sample_block(
                            path, op_b, m, k, n, abuf, mr, kc, p0, b_all, c_base.0, j_lo, j_hi,
                        )
                    };
                });
            }
        }
    });
    let flops = 2 * (samples as u64) * (m as u64) * (k as u64) * (n as u64);
    let mut packed_elems = (m_panels * mr * k) as u64;
    let packs_b = op_b == Trans::T || (path == KernelPath::Scalar && m > MR);
    if packs_b {
        packed_elems += (samples as u64) * (n.div_ceil(NR) * NR * k) as u64;
    }
    perf::record_gemm(
        flops,
        packed_elems * std::mem::size_of::<f64>() as u64,
        t0.elapsed().as_nanos() as u64,
        path != KernelPath::Scalar,
    );
}

/// `C += A * B` on flat row-major buffers.
///
/// `a` is `m × k`, `b` is `k × n`, `c` is `m × n`. Accumulates into `c`
/// (callers wanting a plain product must zero `c` first).
///
/// # Panics
/// If any buffer length disagrees with the given dimensions.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), m * k, "gemm: A length");
    assert_eq!(b.len(), k * n, "gemm: B length");
    assert_eq!(c.len(), m * n, "gemm: C length");
    gemm_driver(Trans::N, Trans::N, 1, m, k, n, a, b, c);
}

/// `C += Aᵀ * B` on flat row-major buffers, without materializing `Aᵀ`.
///
/// `a` is `k × m` (so `aᵀ` is `m × k`), `b` is `k × n`, `c` is `m × n`.
/// This is the shape needed by the convolution input-gradient pass.
pub fn gemm_tn(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), k * m, "gemm_tn: A length");
    assert_eq!(b.len(), k * n, "gemm_tn: B length");
    assert_eq!(c.len(), m * n, "gemm_tn: C length");
    gemm_driver(Trans::T, Trans::N, 1, m, k, n, a, b, c);
}

/// `C += A * Bᵀ` on flat row-major buffers, without materializing `Bᵀ`.
///
/// `a` is `m × k`, `b` is `n × k`, `c` is `m × n`. Used by the convolution
/// weight-gradient pass.
pub fn gemm_nt(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), m * k, "gemm_nt: A length");
    assert_eq!(b.len(), n * k, "gemm_nt: B length");
    assert_eq!(c.len(), m * n, "gemm_nt: C length");
    gemm_driver(Trans::N, Trans::T, 1, m, k, n, a, b, c);
}

/// Batched `C_s += A * B_s` sharing one packed copy of A across the batch.
///
/// `a` is `m × k`; `b_all` holds `samples` consecutive `k × n` matrices and
/// `c_all` the matching `m × n` outputs. Used by the batch-fused convolution
/// forward pass: one call per layer per mini-batch.
pub fn gemm_batch(
    samples: usize,
    m: usize,
    k: usize,
    n: usize,
    a: &[f64],
    b_all: &[f64],
    c_all: &mut [f64],
) {
    assert_eq!(a.len(), m * k, "gemm_batch: A length");
    assert_eq!(b_all.len(), samples * k * n, "gemm_batch: B length");
    assert_eq!(c_all.len(), samples * m * n, "gemm_batch: C length");
    gemm_driver(Trans::N, Trans::N, samples, m, k, n, a, b_all, c_all);
}

/// Batched `C_s += Aᵀ * B_s` sharing one packed copy of A across the batch.
///
/// `a` is `k × m`; `b_all` / `c_all` as in [`gemm_batch`]. Used by the
/// batch-fused convolution input-gradient pass.
pub fn gemm_tn_batch(
    samples: usize,
    m: usize,
    k: usize,
    n: usize,
    a: &[f64],
    b_all: &[f64],
    c_all: &mut [f64],
) {
    assert_eq!(a.len(), k * m, "gemm_tn_batch: A length");
    assert_eq!(b_all.len(), samples * k * n, "gemm_tn_batch: B length");
    assert_eq!(c_all.len(), samples * m * n, "gemm_tn_batch: C length");
    gemm_driver(Trans::T, Trans::N, samples, m, k, n, a, b_all, c_all);
}

/// Batched `C += Σ_s A_s * B_sᵀ`: all samples accumulate into one shared C.
///
/// `a_all` holds `samples` consecutive `m × k` matrices, `b_all` the matching
/// `n × k` matrices, `c` the single shared `m × n` accumulator. Used by the
/// batch-fused convolution weight-gradient pass, where every sample
/// contributes to the same gradient tile.
pub fn gemm_nt_batch(
    samples: usize,
    m: usize,
    k: usize,
    n: usize,
    a_all: &[f64],
    b_all: &[f64],
    c: &mut [f64],
) {
    assert_eq!(a_all.len(), samples * m * k, "gemm_nt_batch: A length");
    assert_eq!(b_all.len(), samples * n * k, "gemm_nt_batch: B length");
    assert_eq!(c.len(), m * n, "gemm_nt_batch: C length");
    for s in 0..samples {
        gemm_driver(
            Trans::N,
            Trans::T,
            1,
            m,
            k,
            n,
            &a_all[s * m * k..][..m * k],
            &b_all[s * n * k..][..n * k],
            c,
        );
    }
}

/// Convenience wrapper: full product of two [`Matrix`] values.
///
/// # Panics
/// If the inner dimensions disagree.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul: inner dimension mismatch");
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm(
        a.rows(),
        a.cols(),
        b.cols(),
        a.as_slice(),
        b.as_slice(),
        c.as_mut_slice(),
    );
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference triple loop, no blocking.
    fn naive(m: usize, k: usize, n: usize, a: &[f64], b: &[f64]) -> Vec<f64> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a[i * k + p] * b[p * n + j];
                }
                c[i * n + j] = s;
            }
        }
        c
    }

    fn det_fill(len: usize, seed: u64) -> Vec<f64> {
        // Deterministic pseudo-random values without pulling in `rand`.
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 2000) as f64 / 1000.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn gemm_matches_naive_on_odd_sizes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (65, 64, 63),
            (130, 17, 70),
            // Exercise micro-tile edges and KC-block boundaries.
            (4, 8, 8),
            (5, 256, 9),
            (7, 300, 17),
            (1, 513, 1),
            // Tile-width edges of the SIMD paths (16-col tiles, 8-row panels).
            (8, 64, 16),
            (9, 300, 33),
            (16, 150, 47),
        ] {
            let a = det_fill(m * k, 42);
            let b = det_fill(k * n, 7);
            let mut c = vec![0.0; m * n];
            gemm(m, k, n, &a, &b, &mut c);
            let r = naive(m, k, n, &a, &b);
            crate::assert_slice_close(&c, &r, 1e-10, 1e-10, "gemm vs naive");
        }
    }

    #[test]
    fn gemm_accumulates() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![2.0, 3.0, 4.0, 5.0];
        let mut c = vec![1.0; 4];
        gemm(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, vec![3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn gemm_with_empty_shared_dim_is_identity() {
        let mut c = vec![1.5; 6];
        gemm(2, 0, 3, &[], &[], &mut c);
        assert_eq!(c, vec![1.5; 6]);
    }

    #[test]
    fn gemm_tn_matches_explicit_transpose() {
        let (m, k, n) = (9, 13, 11);
        let a = det_fill(k * m, 3); // k × m
        let b = det_fill(k * n, 4);
        // Explicit Aᵀ.
        let mut at = vec![0.0; m * k];
        for p in 0..k {
            for i in 0..m {
                at[i * k + p] = a[p * m + i];
            }
        }
        let r = naive(m, k, n, &at, &b);
        let mut c = vec![0.0; m * n];
        gemm_tn(m, k, n, &a, &b, &mut c);
        crate::assert_slice_close(&c, &r, 1e-10, 1e-10, "gemm_tn");
    }

    #[test]
    fn gemm_nt_matches_explicit_transpose() {
        let (m, k, n) = (6, 10, 8);
        let a = det_fill(m * k, 5);
        let b = det_fill(n * k, 6); // n × k
        let mut bt = vec![0.0; k * n];
        for j in 0..n {
            for p in 0..k {
                bt[p * n + j] = b[j * k + p];
            }
        }
        let r = naive(m, k, n, &a, &bt);
        let mut c = vec![0.0; m * n];
        gemm_nt(m, k, n, &a, &b, &mut c);
        crate::assert_slice_close(&c, &r, 1e-10, 1e-10, "gemm_nt");
    }

    #[test]
    fn batched_variants_match_per_sample_calls() {
        let (samples, m, k, n) = (3, 5, 13, 9);
        let a = det_fill(m * k, 11);
        let a_t = det_fill(k * m, 12);
        let b_all = det_fill(samples * k * n, 13);
        let bt_all = det_fill(samples * n * k, 14);

        // gemm_batch vs per-sample gemm.
        let mut c_batch = vec![0.0; samples * m * n];
        gemm_batch(samples, m, k, n, &a, &b_all, &mut c_batch);
        for s in 0..samples {
            let mut c_one = vec![0.0; m * n];
            gemm(m, k, n, &a, &b_all[s * k * n..][..k * n], &mut c_one);
            assert_eq!(
                &c_batch[s * m * n..][..m * n],
                &c_one[..],
                "gemm_batch sample {s}"
            );
        }

        // gemm_tn_batch vs per-sample gemm_tn.
        let mut c_batch = vec![0.0; samples * m * n];
        gemm_tn_batch(samples, m, k, n, &a_t, &b_all, &mut c_batch);
        for s in 0..samples {
            let mut c_one = vec![0.0; m * n];
            gemm_tn(m, k, n, &a_t, &b_all[s * k * n..][..k * n], &mut c_one);
            assert_eq!(
                &c_batch[s * m * n..][..m * n],
                &c_one[..],
                "gemm_tn_batch sample {s}"
            );
        }

        // gemm_nt_batch vs accumulating per-sample gemm_nt.
        let a_all = det_fill(samples * m * k, 15);
        let mut c_shared = vec![0.0; m * n];
        gemm_nt_batch(samples, m, k, n, &a_all, &bt_all, &mut c_shared);
        let mut c_ref = vec![0.0; m * n];
        for s in 0..samples {
            gemm_nt(
                m,
                k,
                n,
                &a_all[s * m * k..][..m * k],
                &bt_all[s * n * k..][..n * k],
                &mut c_ref,
            );
        }
        assert_eq!(c_shared, c_ref, "gemm_nt_batch vs per-sample accumulation");
    }

    #[test]
    fn gemm_records_perf_counters() {
        let (m, k, n) = (4, 6, 8);
        let a = det_fill(m * k, 1);
        let b = det_fill(k * n, 2);
        let mut c = vec![0.0; m * n];
        let before = perf::snapshot();
        gemm(m, k, n, &a, &b, &mut c);
        let spent = perf::snapshot().since(&before);
        assert_eq!(spent.gemm_calls, 1);
        assert_eq!(spent.flops, 2 * (m * k * n) as u64);
        assert!(spent.bytes_packed > 0);
        if kernel_path() != KernelPath::Scalar {
            assert_eq!(spent.simd_calls, 1);
        }
    }

    #[test]
    fn default_kernel_path_is_supported() {
        // Whatever detection picked must actually run here, and the scalar
        // fallback must always be available.
        assert!(kernel_path().supported());
        assert!(KernelPath::Scalar.supported());
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f64);
        let id = Matrix::identity(4);
        assert_eq!(matmul(&a, &id), a);
        assert_eq!(matmul(&id, &a), a);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = matmul(&a, &b);
    }
}
