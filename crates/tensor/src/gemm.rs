//! Packed, register-tiled general matrix–matrix multiply.
//!
//! The kernels here are the single hot spot of the whole training pipeline:
//! every convolution forward/backward pass lowers to one of them (see
//! [`crate::im2col`]). The design is the classic panel-packing scheme: the
//! shared dimension is blocked by [`KC`], and within each block A is packed
//! into [`MR`]-interleaved row panels and B into [`NR`]-interleaved column
//! panels. The micro-kernel then streams both panels contiguously, keeping a
//! full `MR × NR` accumulator tile in locals and advancing with
//! [`f64::mul_add`] — which the repo-level `.cargo/config.toml` lowers to FMA
//! instructions.
//!
//! Transposed variants ([`gemm_tn`], [`gemm_nt`]) reuse the exact same
//! micro-kernel: the transposition happens for free during packing, so all
//! operand layouts produce bit-identical results for identical logical
//! inputs. Pack buffers live in thread-local storage and are reused across
//! calls, so steady-state GEMM performs no heap allocation.
//!
//! Every driver call records FLOPs, call counts and packing traffic in
//! [`crate::perf`].

use crate::{perf, Matrix};
use std::cell::RefCell;

/// Micro-tile rows: how many rows of C each micro-kernel invocation owns.
const MR: usize = 4;
/// Micro-tile columns. `MR × NR` f64 accumulators fill 8 AVX2 (or 4 AVX-512)
/// vector registers, leaving room for the broadcast and B loads.
const NR: usize = 8;
/// Shared-dimension block: one packed A panel (`KC × MR`) is 8 KiB and one B
/// panel (`KC × NR`) is 16 KiB, so the working set of a micro-kernel call
/// stays resident in L1.
const KC: usize = 256;
/// Column block: B is packed `NC` columns at a time so each source row
/// contributes a long contiguous run (`NC` doubles) — sequential enough for
/// the hardware prefetcher — while the packed chunk (`KC × NC`, ≤512 KiB)
/// stays L2-resident for reuse by every A panel.
const NC: usize = 256;

struct PackBufs {
    a: Vec<f64>,
    b: Vec<f64>,
}

thread_local! {
    static PACK_BUFS: RefCell<PackBufs> =
        const { RefCell::new(PackBufs { a: Vec::new(), b: Vec::new() }) };
}

/// Operand layout: `N` means the slice stores the logical matrix row-major,
/// `T` means it stores the transpose (so packing walks it column-wise).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Trans {
    N,
    T,
}

/// Packs every `MR`-row panel of the logical `m × k` matrix A for the
/// shared-dimension block `p0 .. p0+kc` into `buf`, zero-padding the last
/// panel. Layout: panel `ip` at `buf[ip*kc*MR..]`, element `(p, r)` at
/// `p*MR + r`.
fn pack_a_block(op: Trans, a: &[f64], m: usize, k: usize, p0: usize, kc: usize, buf: &mut [f64]) {
    let m_panels = m.div_ceil(MR);
    for ip in 0..m_panels {
        let i0 = ip * MR;
        let mr_eff = MR.min(m - i0);
        let panel = &mut buf[ip * kc * MR..][..kc * MR];
        match op {
            Trans::N => {
                // a[(i0+r)*k + p0+p] → panel[p*MR + r]
                if mr_eff < MR {
                    panel.fill(0.0);
                }
                for r in 0..mr_eff {
                    let row = &a[(i0 + r) * k + p0..][..kc];
                    for (p, &v) in row.iter().enumerate() {
                        panel[p * MR + r] = v;
                    }
                }
            }
            Trans::T => {
                // a stored k × m: a[(p0+p)*m + i0+r] → panel[p*MR + r]
                for p in 0..kc {
                    let src = &a[(p0 + p) * m + i0..][..mr_eff];
                    let dst = &mut panel[p * MR..][..MR];
                    dst[..mr_eff].copy_from_slice(src);
                    dst[mr_eff..].fill(0.0);
                }
            }
        }
    }
}

/// Packs a chunk of B — columns `jc .. jc+nc_eff`, shared rows
/// `p0 .. p0+kc` — into `buf` as `ceil(nc_eff / NR)` NR-interleaved strips
/// (strip `js` at `buf[js*kc*NR..]`, element `(p, c)` at `p*NR + c`), zero-
/// padding the last strip.
///
/// For `Trans::N` (`k × n` slice) each source row contributes one contiguous
/// `nc_eff`-wide run, scattered across the strips; for `Trans::T` (`n × k`
/// slice) the transposition happens here, walking contiguous columns.
#[allow(clippy::too_many_arguments)]
fn pack_b_chunk(
    op: Trans,
    b: &[f64],
    k: usize,
    n: usize,
    p0: usize,
    kc: usize,
    jc: usize,
    nc_eff: usize,
    buf: &mut [f64],
) {
    let full = nc_eff / NR;
    let rem = nc_eff % NR;
    match op {
        Trans::N => {
            // b[(p0+p)*n + jc+c] → strip[c/NR][p*NR + c%NR]
            for p in 0..kc {
                let src = &b[(p0 + p) * n + jc..][..nc_eff];
                for js in 0..full {
                    let dst = &mut buf[js * kc * NR + p * NR..][..NR];
                    dst.copy_from_slice(&src[js * NR..][..NR]);
                }
                if rem > 0 {
                    let dst = &mut buf[full * kc * NR + p * NR..][..NR];
                    dst[..rem].copy_from_slice(&src[full * NR..]);
                    dst[rem..].fill(0.0);
                }
            }
        }
        Trans::T => {
            // b stored n × k: b[(jc+c)*k + p0+p] → strip[c/NR][p*NR + c%NR]
            if rem > 0 {
                buf[full * kc * NR..][..kc * NR].fill(0.0);
            }
            for c in 0..nc_eff {
                let col = &b[(jc + c) * k + p0..][..kc];
                let (js, cr) = (c / NR, c % NR);
                let strip = &mut buf[js * kc * NR..][..kc * NR];
                for (p, &v) in col.iter().enumerate() {
                    strip[p * NR + cr] = v;
                }
            }
        }
    }
}

/// Accumulator write-back: adds the live `mr_eff × nr_eff` corner of the
/// register tile into C.
#[inline(always)]
fn write_back(
    acc: &[[f64; NR]; MR],
    c: &mut [f64],
    i0: usize,
    j0: usize,
    mr_eff: usize,
    nr_eff: usize,
    ldc: usize,
) {
    for r in 0..mr_eff {
        let c_row = &mut c[(i0 + r) * ldc + j0..][..nr_eff];
        for (dst, &v) in c_row.iter_mut().zip(&acc[r][..nr_eff]) {
            *dst += v;
        }
    }
}

/// The register-tiled core: `C[i0.., j0..] += Ap · Bp` for one packed A
/// panel (`kc × MR`) against one packed B strip (`kc × NR`). The accumulator
/// tile lives entirely in locals (it compiles to 8 packed-FMA chains, enough
/// to saturate both FMA ports); edge tiles compute the full micro-tile on
/// the zero padding and clip only the write-back.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro_kernel(
    ap: &[f64],
    bp: &[f64],
    c: &mut [f64],
    i0: usize,
    j0: usize,
    mr_eff: usize,
    nr_eff: usize,
    ldc: usize,
) {
    let mut acc = [[0.0f64; NR]; MR];
    // `chunks_exact` + `zip` lets the compiler drop every bounds check in the
    // kc loop; both panels advance in lockstep, one micro-tile rank-1 update
    // per step. The fixed-size reborrows below are what lets the tile update
    // compile to packed FMA: with `[f64; NR]` operands the whole inner loop
    // unrolls into straight-line vector code.
    for (a_col, b_row) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        let a_col: &[f64; MR] = a_col.try_into().unwrap();
        let b_row: &[f64; NR] = b_row.try_into().unwrap();
        for r in 0..MR {
            let av = a_col[r];
            for j in 0..NR {
                acc[r][j] = av.mul_add(b_row[j], acc[r][j]);
            }
        }
    }
    write_back(&acc, c, i0, j0, mr_eff, nr_eff, ldc);
}

/// Column-segment width of the small-m kernel: 4 KiB per C row, so the
/// whole `m × SEG` C working set plus one B segment stays L1-resident.
const SEG: usize = 512;

/// Fast path for `m ≤ MR` against row-major B: with a single A panel there
/// is no packing to amortize, so B is read in place, sequentially, exactly
/// once. C is walked in [`SEG`]-wide column segments held in L1 across the
/// shared-dimension loop; each B row segment is loaded once and reused by
/// all `m` output rows.
fn small_m_kernel(m: usize, n: usize, ap: &[f64], kc: usize, b: &[f64], p0: usize, c: &mut [f64]) {
    for jc in (0..n).step_by(SEG) {
        let seg = SEG.min(n - jc);
        for p in 0..kc {
            let a_col = &ap[p * MR..][..MR];
            let b_row = &b[(p0 + p) * n + jc..][..seg];
            for r in 0..m {
                let av = a_col[r];
                let c_row = &mut c[r * n + jc..][..seg];
                for (dst, &bv) in c_row.iter_mut().zip(b_row) {
                    *dst = av.mul_add(bv, *dst);
                }
            }
        }
    }
}

/// Shared driver behind every public entry point.
///
/// Computes `C_s += op_a(A) · op_b(B_s)` for `samples` consecutive
/// `k × n` / `m × n` operand pairs in `b_all` / `c_all`, sharing one packed
/// copy of A across all samples. The batched conv path uses `samples > 1` to
/// amortize A packing over a whole mini-batch; the plain entry points pass
/// `samples == 1`.
///
/// Loop order: the shared dimension is blocked by [`KC`] and A packed once
/// per block (L2-resident, `m × kc` doubles). Inside, B is packed [`NC`]
/// columns at a time into a single reused `kc × NC` chunk and swept strip by
/// strip by every A panel while cache-hot — B is streamed from memory
/// exactly once per sample, and no operand-sized pack buffer is ever
/// materialized.
#[allow(clippy::too_many_arguments)]
fn gemm_driver(
    op_a: Trans,
    op_b: Trans,
    samples: usize,
    m: usize,
    k: usize,
    n: usize,
    a: &[f64],
    b_all: &[f64],
    c_all: &mut [f64],
) {
    if samples == 0 || m == 0 || n == 0 {
        return;
    }
    let m_panels = m.div_ceil(MR);
    let n_panels = n.div_ceil(NR);
    PACK_BUFS.with(|bufs| {
        let mut bufs = bufs.borrow_mut();
        let PackBufs { a: abuf, b: bbuf } = &mut *bufs;
        for p0 in (0..k).step_by(KC) {
            let kc = KC.min(k - p0);
            abuf.resize(m_panels * kc * MR, 0.0);
            bbuf.resize((NC / NR) * kc * NR, 0.0);
            pack_a_block(op_a, a, m, k, p0, kc, abuf);
            for s in 0..samples {
                let b = &b_all[s * k * n..][..k * n];
                let c = &mut c_all[s * m * n..][..m * n];
                if m <= MR && op_b == Trans::N {
                    small_m_kernel(m, n, abuf, kc, b, p0, c);
                    continue;
                }
                for jc in (0..n).step_by(NC) {
                    let nc_eff = NC.min(n - jc);
                    pack_b_chunk(op_b, b, k, n, p0, kc, jc, nc_eff, bbuf);
                    for js in 0..nc_eff.div_ceil(NR) {
                        let strip = &bbuf[js * kc * NR..][..kc * NR];
                        let j0 = jc + js * NR;
                        let nr_eff = NR.min(n - j0);
                        for ip in 0..m_panels {
                            let ap = &abuf[ip * kc * MR..][..kc * MR];
                            let i0 = ip * MR;
                            micro_kernel(ap, strip, c, i0, j0, MR.min(m - i0), nr_eff, n);
                        }
                    }
                }
            }
        }
    });
    let flops = 2 * (samples as u64) * (m as u64) * (k as u64) * (n as u64);
    let mut packed_elems = (m_panels * MR * k) as u64;
    if !(m <= MR && op_b == Trans::N) {
        packed_elems += (samples as u64) * (n_panels * NR * k) as u64;
    }
    perf::record_gemm(flops, packed_elems * std::mem::size_of::<f64>() as u64);
}

/// `C += A * B` on flat row-major buffers.
///
/// `a` is `m × k`, `b` is `k × n`, `c` is `m × n`. Accumulates into `c`
/// (callers wanting a plain product must zero `c` first).
///
/// # Panics
/// If any buffer length disagrees with the given dimensions.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), m * k, "gemm: A length");
    assert_eq!(b.len(), k * n, "gemm: B length");
    assert_eq!(c.len(), m * n, "gemm: C length");
    gemm_driver(Trans::N, Trans::N, 1, m, k, n, a, b, c);
}

/// `C += Aᵀ * B` on flat row-major buffers, without materializing `Aᵀ`.
///
/// `a` is `k × m` (so `aᵀ` is `m × k`), `b` is `k × n`, `c` is `m × n`.
/// This is the shape needed by the convolution input-gradient pass.
pub fn gemm_tn(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), k * m, "gemm_tn: A length");
    assert_eq!(b.len(), k * n, "gemm_tn: B length");
    assert_eq!(c.len(), m * n, "gemm_tn: C length");
    gemm_driver(Trans::T, Trans::N, 1, m, k, n, a, b, c);
}

/// `C += A * Bᵀ` on flat row-major buffers, without materializing `Bᵀ`.
///
/// `a` is `m × k`, `b` is `n × k`, `c` is `m × n`. Used by the convolution
/// weight-gradient pass.
pub fn gemm_nt(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), m * k, "gemm_nt: A length");
    assert_eq!(b.len(), n * k, "gemm_nt: B length");
    assert_eq!(c.len(), m * n, "gemm_nt: C length");
    gemm_driver(Trans::N, Trans::T, 1, m, k, n, a, b, c);
}

/// Batched `C_s += A * B_s` sharing one packed copy of A across the batch.
///
/// `a` is `m × k`; `b_all` holds `samples` consecutive `k × n` matrices and
/// `c_all` the matching `m × n` outputs. Used by the batch-fused convolution
/// forward pass: one call per layer per mini-batch.
pub fn gemm_batch(
    samples: usize,
    m: usize,
    k: usize,
    n: usize,
    a: &[f64],
    b_all: &[f64],
    c_all: &mut [f64],
) {
    assert_eq!(a.len(), m * k, "gemm_batch: A length");
    assert_eq!(b_all.len(), samples * k * n, "gemm_batch: B length");
    assert_eq!(c_all.len(), samples * m * n, "gemm_batch: C length");
    gemm_driver(Trans::N, Trans::N, samples, m, k, n, a, b_all, c_all);
}

/// Batched `C_s += Aᵀ * B_s` sharing one packed copy of A across the batch.
///
/// `a` is `k × m`; `b_all` / `c_all` as in [`gemm_batch`]. Used by the
/// batch-fused convolution input-gradient pass.
pub fn gemm_tn_batch(
    samples: usize,
    m: usize,
    k: usize,
    n: usize,
    a: &[f64],
    b_all: &[f64],
    c_all: &mut [f64],
) {
    assert_eq!(a.len(), k * m, "gemm_tn_batch: A length");
    assert_eq!(b_all.len(), samples * k * n, "gemm_tn_batch: B length");
    assert_eq!(c_all.len(), samples * m * n, "gemm_tn_batch: C length");
    gemm_driver(Trans::T, Trans::N, samples, m, k, n, a, b_all, c_all);
}

/// Batched `C += Σ_s A_s * B_sᵀ`: all samples accumulate into one shared C.
///
/// `a_all` holds `samples` consecutive `m × k` matrices, `b_all` the matching
/// `n × k` matrices, `c` the single shared `m × n` accumulator. Used by the
/// batch-fused convolution weight-gradient pass, where every sample
/// contributes to the same gradient tile.
pub fn gemm_nt_batch(
    samples: usize,
    m: usize,
    k: usize,
    n: usize,
    a_all: &[f64],
    b_all: &[f64],
    c: &mut [f64],
) {
    assert_eq!(a_all.len(), samples * m * k, "gemm_nt_batch: A length");
    assert_eq!(b_all.len(), samples * n * k, "gemm_nt_batch: B length");
    assert_eq!(c.len(), m * n, "gemm_nt_batch: C length");
    for s in 0..samples {
        gemm_driver(
            Trans::N,
            Trans::T,
            1,
            m,
            k,
            n,
            &a_all[s * m * k..][..m * k],
            &b_all[s * n * k..][..n * k],
            c,
        );
    }
}

/// Convenience wrapper: full product of two [`Matrix`] values.
///
/// # Panics
/// If the inner dimensions disagree.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul: inner dimension mismatch");
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm(
        a.rows(),
        a.cols(),
        b.cols(),
        a.as_slice(),
        b.as_slice(),
        c.as_mut_slice(),
    );
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference triple loop, no blocking.
    fn naive(m: usize, k: usize, n: usize, a: &[f64], b: &[f64]) -> Vec<f64> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a[i * k + p] * b[p * n + j];
                }
                c[i * n + j] = s;
            }
        }
        c
    }

    fn det_fill(len: usize, seed: u64) -> Vec<f64> {
        // Deterministic pseudo-random values without pulling in `rand`.
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 2000) as f64 / 1000.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn gemm_matches_naive_on_odd_sizes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (65, 64, 63),
            (130, 17, 70),
            // Exercise micro-tile edges and KC-block boundaries.
            (4, 8, 8),
            (5, 256, 9),
            (7, 300, 17),
            (1, 513, 1),
        ] {
            let a = det_fill(m * k, 42);
            let b = det_fill(k * n, 7);
            let mut c = vec![0.0; m * n];
            gemm(m, k, n, &a, &b, &mut c);
            let r = naive(m, k, n, &a, &b);
            crate::assert_slice_close(&c, &r, 1e-10, 1e-10, "gemm vs naive");
        }
    }

    #[test]
    fn gemm_accumulates() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![2.0, 3.0, 4.0, 5.0];
        let mut c = vec![1.0; 4];
        gemm(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, vec![3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn gemm_with_empty_shared_dim_is_identity() {
        let mut c = vec![1.5; 6];
        gemm(2, 0, 3, &[], &[], &mut c);
        assert_eq!(c, vec![1.5; 6]);
    }

    #[test]
    fn gemm_tn_matches_explicit_transpose() {
        let (m, k, n) = (9, 13, 11);
        let a = det_fill(k * m, 3); // k × m
        let b = det_fill(k * n, 4);
        // Explicit Aᵀ.
        let mut at = vec![0.0; m * k];
        for p in 0..k {
            for i in 0..m {
                at[i * k + p] = a[p * m + i];
            }
        }
        let r = naive(m, k, n, &at, &b);
        let mut c = vec![0.0; m * n];
        gemm_tn(m, k, n, &a, &b, &mut c);
        crate::assert_slice_close(&c, &r, 1e-10, 1e-10, "gemm_tn");
    }

    #[test]
    fn gemm_nt_matches_explicit_transpose() {
        let (m, k, n) = (6, 10, 8);
        let a = det_fill(m * k, 5);
        let b = det_fill(n * k, 6); // n × k
        let mut bt = vec![0.0; k * n];
        for j in 0..n {
            for p in 0..k {
                bt[p * n + j] = b[j * k + p];
            }
        }
        let r = naive(m, k, n, &a, &bt);
        let mut c = vec![0.0; m * n];
        gemm_nt(m, k, n, &a, &b, &mut c);
        crate::assert_slice_close(&c, &r, 1e-10, 1e-10, "gemm_nt");
    }

    #[test]
    fn batched_variants_match_per_sample_calls() {
        let (samples, m, k, n) = (3, 5, 13, 9);
        let a = det_fill(m * k, 11);
        let a_t = det_fill(k * m, 12);
        let b_all = det_fill(samples * k * n, 13);
        let bt_all = det_fill(samples * n * k, 14);

        // gemm_batch vs per-sample gemm.
        let mut c_batch = vec![0.0; samples * m * n];
        gemm_batch(samples, m, k, n, &a, &b_all, &mut c_batch);
        for s in 0..samples {
            let mut c_one = vec![0.0; m * n];
            gemm(m, k, n, &a, &b_all[s * k * n..][..k * n], &mut c_one);
            assert_eq!(
                &c_batch[s * m * n..][..m * n],
                &c_one[..],
                "gemm_batch sample {s}"
            );
        }

        // gemm_tn_batch vs per-sample gemm_tn.
        let mut c_batch = vec![0.0; samples * m * n];
        gemm_tn_batch(samples, m, k, n, &a_t, &b_all, &mut c_batch);
        for s in 0..samples {
            let mut c_one = vec![0.0; m * n];
            gemm_tn(m, k, n, &a_t, &b_all[s * k * n..][..k * n], &mut c_one);
            assert_eq!(
                &c_batch[s * m * n..][..m * n],
                &c_one[..],
                "gemm_tn_batch sample {s}"
            );
        }

        // gemm_nt_batch vs accumulating per-sample gemm_nt.
        let a_all = det_fill(samples * m * k, 15);
        let mut c_shared = vec![0.0; m * n];
        gemm_nt_batch(samples, m, k, n, &a_all, &bt_all, &mut c_shared);
        let mut c_ref = vec![0.0; m * n];
        for s in 0..samples {
            gemm_nt(
                m,
                k,
                n,
                &a_all[s * m * k..][..m * k],
                &bt_all[s * n * k..][..n * k],
                &mut c_ref,
            );
        }
        assert_eq!(c_shared, c_ref, "gemm_nt_batch vs per-sample accumulation");
    }

    #[test]
    fn gemm_records_perf_counters() {
        let (m, k, n) = (4, 6, 8);
        let a = det_fill(m * k, 1);
        let b = det_fill(k * n, 2);
        let mut c = vec![0.0; m * n];
        let before = perf::snapshot();
        gemm(m, k, n, &a, &b, &mut c);
        let spent = perf::snapshot().since(&before);
        assert_eq!(spent.gemm_calls, 1);
        assert_eq!(spent.flops, 2 * (m * k * n) as u64);
        assert!(spent.bytes_packed > 0);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f64);
        let id = Matrix::identity(4);
        assert_eq!(matmul(&a, &id), a);
        assert_eq!(matmul(&id, &a), a);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = matmul(&a, &b);
    }
}
