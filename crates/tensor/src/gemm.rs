//! Blocked general matrix–matrix multiply.
//!
//! The kernels here are the single hot spot of the whole training pipeline:
//! every convolution forward/backward pass lowers to one of them (see
//! [`crate::im2col`]). They are written as straightforward cache-blocked
//! loops over flat slices — no unsafe, no SIMD intrinsics — which is enough
//! for the CNN sizes in the paper (5×5 kernels, ≤16 channels) while staying
//! obviously correct.

use crate::Matrix;

/// Cache block edge. 64×64 f64 tiles are 32 KiB, comfortably inside L1+L2 on
/// any machine this crate targets.
const BLOCK: usize = 64;

/// `C += A * B` on flat row-major buffers.
///
/// `a` is `m × k`, `b` is `k × n`, `c` is `m × n`. Accumulates into `c`
/// (callers wanting a plain product must zero `c` first).
///
/// # Panics
/// If any buffer length disagrees with the given dimensions.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), m * k, "gemm: A length");
    assert_eq!(b.len(), k * n, "gemm: B length");
    assert_eq!(c.len(), m * n, "gemm: C length");

    for i0 in (0..m).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(m);
        for p0 in (0..k).step_by(BLOCK) {
            let p1 = (p0 + BLOCK).min(k);
            for j0 in (0..n).step_by(BLOCK) {
                let j1 = (j0 + BLOCK).min(n);
                for i in i0..i1 {
                    let a_row = &a[i * k..(i + 1) * k];
                    let c_row = &mut c[i * n..(i + 1) * n];
                    for p in p0..p1 {
                        let av = a_row[p];
                        if av == 0.0 {
                            continue;
                        }
                        let b_row = &b[p * n..(p + 1) * n];
                        for j in j0..j1 {
                            c_row[j] += av * b_row[j];
                        }
                    }
                }
            }
        }
    }
}

/// `C += Aᵀ * B` on flat row-major buffers, without materializing `Aᵀ`.
///
/// `a` is `k × m` (so `aᵀ` is `m × k`), `b` is `k × n`, `c` is `m × n`.
/// This is the shape needed by the convolution weight-gradient pass.
pub fn gemm_tn(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), k * m, "gemm_tn: A length");
    assert_eq!(b.len(), k * n, "gemm_tn: B length");
    assert_eq!(c.len(), m * n, "gemm_tn: C length");

    // Loop over the shared dimension outermost: each iteration is a rank-1
    // update using contiguous rows of both A and B.
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for i in 0..m {
            let av = a_row[i];
            if av == 0.0 {
                continue;
            }
            let c_row = &mut c[i * n..(i + 1) * n];
            for j in 0..n {
                c_row[j] += av * b_row[j];
            }
        }
    }
}

/// `C += A * Bᵀ` on flat row-major buffers, without materializing `Bᵀ`.
///
/// `a` is `m × k`, `b` is `n × k`, `c` is `m × n`. Used by the convolution
/// input-gradient pass.
pub fn gemm_nt(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), m * k, "gemm_nt: A length");
    assert_eq!(b.len(), n * k, "gemm_nt: B length");
    assert_eq!(c.len(), m * n, "gemm_nt: C length");

    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for p in 0..k {
                acc += a_row[p] * b_row[p];
            }
            c_row[j] += acc;
        }
    }
}

/// Convenience wrapper: full product of two [`Matrix`] values.
///
/// # Panics
/// If the inner dimensions disagree.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul: inner dimension mismatch");
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm(a.rows(), a.cols(), b.cols(), a.as_slice(), b.as_slice(), c.as_mut_slice());
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference triple loop, no blocking.
    fn naive(m: usize, k: usize, n: usize, a: &[f64], b: &[f64]) -> Vec<f64> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a[i * k + p] * b[p * n + j];
                }
                c[i * n + j] = s;
            }
        }
        c
    }

    fn det_fill(len: usize, seed: u64) -> Vec<f64> {
        // Deterministic pseudo-random values without pulling in `rand`.
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 2000) as f64 / 1000.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn gemm_matches_naive_on_odd_sizes() {
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (65, 64, 63), (130, 17, 70)] {
            let a = det_fill(m * k, 42);
            let b = det_fill(k * n, 7);
            let mut c = vec![0.0; m * n];
            gemm(m, k, n, &a, &b, &mut c);
            let r = naive(m, k, n, &a, &b);
            crate::assert_slice_close(&c, &r, 1e-10, 1e-10, "gemm vs naive");
        }
    }

    #[test]
    fn gemm_accumulates() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![2.0, 3.0, 4.0, 5.0];
        let mut c = vec![1.0; 4];
        gemm(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, vec![3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn gemm_tn_matches_explicit_transpose() {
        let (m, k, n) = (9, 13, 11);
        let a = det_fill(k * m, 3); // k × m
        let b = det_fill(k * n, 4);
        // Explicit Aᵀ.
        let mut at = vec![0.0; m * k];
        for p in 0..k {
            for i in 0..m {
                at[i * k + p] = a[p * m + i];
            }
        }
        let r = naive(m, k, n, &at, &b);
        let mut c = vec![0.0; m * n];
        gemm_tn(m, k, n, &a, &b, &mut c);
        crate::assert_slice_close(&c, &r, 1e-10, 1e-10, "gemm_tn");
    }

    #[test]
    fn gemm_nt_matches_explicit_transpose() {
        let (m, k, n) = (6, 10, 8);
        let a = det_fill(m * k, 5);
        let b = det_fill(n * k, 6); // n × k
        let mut bt = vec![0.0; k * n];
        for j in 0..n {
            for p in 0..k {
                bt[p * n + j] = b[j * k + p];
            }
        }
        let r = naive(m, k, n, &a, &bt);
        let mut c = vec![0.0; m * n];
        gemm_nt(m, k, n, &a, &b, &mut c);
        crate::assert_slice_close(&c, &r, 1e-10, 1e-10, "gemm_nt");
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f64);
        let id = Matrix::identity(4);
        assert_eq!(matmul(&a, &id), a);
        assert_eq!(matmul(&id, &a), a);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = matmul(&a, &b);
    }
}
