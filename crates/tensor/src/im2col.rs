//! im2col / col2im lowering.
//!
//! `im2col` unrolls every receptive field of a convolution into one column of
//! a matrix so the convolution becomes a single GEMM — the classic lowering
//! used by CPU deep-learning frameworks. `col2im` is its adjoint and is the
//! core of the input-gradient pass.

/// Geometry of a 2-D convolution over one sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvGeom {
    /// Input channels.
    pub c: usize,
    /// Input height (before padding).
    pub h: usize,
    /// Input width (before padding).
    pub w: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same in both directions).
    pub stride: usize,
    /// Symmetric zero padding applied on every side.
    pub pad: usize,
}

impl ConvGeom {
    /// Output height.
    #[inline]
    pub fn out_h(&self) -> usize {
        (self.h + 2 * self.pad - self.kh) / self.stride + 1
    }

    /// Output width.
    #[inline]
    pub fn out_w(&self) -> usize {
        (self.w + 2 * self.pad - self.kw) / self.stride + 1
    }

    /// Number of rows of the column matrix (`c * kh * kw`).
    #[inline]
    pub fn col_rows(&self) -> usize {
        self.c * self.kh * self.kw
    }

    /// Number of columns of the column matrix (`out_h * out_w`).
    #[inline]
    pub fn col_cols(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Validates that the geometry produces at least one output pixel.
    pub fn validate(&self) {
        assert!(self.stride >= 1, "ConvGeom: stride must be >= 1");
        assert!(
            self.h + 2 * self.pad >= self.kh && self.w + 2 * self.pad >= self.kw,
            "ConvGeom: kernel {}x{} larger than padded input {}x{}",
            self.kh,
            self.kw,
            self.h + 2 * self.pad,
            self.w + 2 * self.pad
        );
    }
}

/// Unrolls one `(C, H, W)` sample into the `(c*kh*kw) × (out_h*out_w)`
/// column matrix, writing into `cols` (which must be exactly that size).
///
/// Out-of-bounds (padding) positions contribute zeros.
pub fn im2col(input: &[f64], g: &ConvGeom, cols: &mut [f64]) {
    g.validate();
    assert_eq!(input.len(), g.c * g.h * g.w, "im2col: input length");
    assert_eq!(
        cols.len(),
        g.col_rows() * g.col_cols(),
        "im2col: cols length"
    );

    let (oh, ow) = (g.out_h(), g.out_w());
    let n_cols = oh * ow;
    for c in 0..g.c {
        let plane = &input[c * g.h * g.w..(c + 1) * g.h * g.w];
        for ki in 0..g.kh {
            for kj in 0..g.kw {
                let row = (c * g.kh + ki) * g.kw + kj;
                let out_row = &mut cols[row * n_cols..(row + 1) * n_cols];
                if g.stride == 1 {
                    // Stride 1 (every conv layer in the paper's network): for
                    // a fixed tap, valid output columns form one contiguous
                    // run `oj_lo..oj_hi` (`jj = oj + kj - pad ∈ [0, w)`), so
                    // each output row is zeros / one bulk copy / zeros —
                    // vector moves instead of a branch per element. Pure
                    // data movement: bit-identical to the general path.
                    let oj_lo = g.pad.saturating_sub(kj).min(ow);
                    let oj_hi = (g.w + g.pad).saturating_sub(kj).min(ow).max(oj_lo);
                    let jj0 = (oj_lo + kj).saturating_sub(g.pad).min(g.w);
                    for oi in 0..oh {
                        let ii = (oi + ki) as isize - g.pad as isize;
                        let base = oi * ow;
                        if ii < 0 || ii >= g.h as isize {
                            out_row[base..base + ow].fill(0.0);
                            continue;
                        }
                        let src_row = &plane[ii as usize * g.w..(ii as usize + 1) * g.w];
                        out_row[base..base + oj_lo].fill(0.0);
                        out_row[base + oj_lo..base + oj_hi]
                            .copy_from_slice(&src_row[jj0..jj0 + (oj_hi - oj_lo)]);
                        out_row[base + oj_hi..base + ow].fill(0.0);
                    }
                    continue;
                }
                for oi in 0..oh {
                    let ii = (oi * g.stride + ki) as isize - g.pad as isize;
                    let base = oi * ow;
                    if ii < 0 || ii >= g.h as isize {
                        out_row[base..base + ow].fill(0.0);
                        continue;
                    }
                    let src_row = &plane[ii as usize * g.w..(ii as usize + 1) * g.w];
                    for oj in 0..ow {
                        let jj = (oj * g.stride + kj) as isize - g.pad as isize;
                        out_row[base + oj] = if jj < 0 || jj >= g.w as isize {
                            0.0
                        } else {
                            src_row[jj as usize]
                        };
                    }
                }
            }
        }
    }
}

/// Adjoint of [`im2col`]: scatters (accumulates) the column matrix back onto
/// the `(C, H, W)` sample buffer. `output` is *accumulated into*, callers
/// must zero it when they want a plain adjoint.
pub fn col2im(cols: &[f64], g: &ConvGeom, output: &mut [f64]) {
    g.validate();
    assert_eq!(output.len(), g.c * g.h * g.w, "col2im: output length");
    assert_eq!(
        cols.len(),
        g.col_rows() * g.col_cols(),
        "col2im: cols length"
    );

    let (oh, ow) = (g.out_h(), g.out_w());
    let n_cols = oh * ow;
    for c in 0..g.c {
        let plane = &mut output[c * g.h * g.w..(c + 1) * g.h * g.w];
        for ki in 0..g.kh {
            for kj in 0..g.kw {
                let row = (c * g.kh + ki) * g.kw + kj;
                let in_row = &cols[row * n_cols..(row + 1) * n_cols];
                if g.stride == 1 {
                    // Same contiguous-run structure as the im2col fast path:
                    // the scatter becomes one dense `+=` sweep per row. The
                    // accumulation order over (ki, kj, oi, oj) is unchanged,
                    // so results stay bit-identical to the general path.
                    let oj_lo = g.pad.saturating_sub(kj).min(ow);
                    let oj_hi = (g.w + g.pad).saturating_sub(kj).min(ow).max(oj_lo);
                    let jj0 = (oj_lo + kj).saturating_sub(g.pad).min(g.w);
                    for oi in 0..oh {
                        let ii = (oi + ki) as isize - g.pad as isize;
                        if ii < 0 || ii >= g.h as isize {
                            continue;
                        }
                        let dst_row = &mut plane[ii as usize * g.w..(ii as usize + 1) * g.w];
                        let base = oi * ow;
                        let dst = &mut dst_row[jj0..jj0 + (oj_hi - oj_lo)];
                        let src = &in_row[base + oj_lo..base + oj_hi];
                        for (d, &s) in dst.iter_mut().zip(src) {
                            *d += s;
                        }
                    }
                    continue;
                }
                for oi in 0..oh {
                    let ii = (oi * g.stride + ki) as isize - g.pad as isize;
                    if ii < 0 || ii >= g.h as isize {
                        continue;
                    }
                    let dst_row = &mut plane[ii as usize * g.w..(ii as usize + 1) * g.w];
                    let base = oi * ow;
                    for oj in 0..ow {
                        let jj = (oj * g.stride + kj) as isize - g.pad as isize;
                        if jj >= 0 && jj < g.w as isize {
                            dst_row[jj as usize] += in_row[base + oj];
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_same_padding() {
        let g = ConvGeom {
            c: 4,
            h: 16,
            w: 16,
            kh: 5,
            kw: 5,
            stride: 1,
            pad: 2,
        };
        assert_eq!((g.out_h(), g.out_w()), (16, 16));
        assert_eq!(g.col_rows(), 100);
        assert_eq!(g.col_cols(), 256);
    }

    #[test]
    fn geometry_valid_no_pad() {
        let g = ConvGeom {
            c: 1,
            h: 6,
            w: 7,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 0,
        };
        assert_eq!((g.out_h(), g.out_w()), (4, 5));
    }

    #[test]
    fn im2col_identity_kernel_geometry() {
        // 1×1 kernel, stride 1, no pad: cols == input.
        let g = ConvGeom {
            c: 2,
            h: 3,
            w: 3,
            kh: 1,
            kw: 1,
            stride: 1,
            pad: 0,
        };
        let input: Vec<f64> = (0..18).map(|x| x as f64).collect();
        let mut cols = vec![0.0; g.col_rows() * g.col_cols()];
        im2col(&input, &g, &mut cols);
        assert_eq!(cols, input);
    }

    #[test]
    fn im2col_known_values() {
        // 1 channel, 3×3 input, 2×2 kernel, no pad → 2×2 output, 4 rows.
        let g = ConvGeom {
            c: 1,
            h: 3,
            w: 3,
            kh: 2,
            kw: 2,
            stride: 1,
            pad: 0,
        };
        let input = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let mut cols = vec![0.0; 4 * 4];
        im2col(&input, &g, &mut cols);
        // Row layout: (ki,kj) = (0,0),(0,1),(1,0),(1,1); columns are the 4
        // output positions in row-major order.
        assert_eq!(&cols[0..4], &[1.0, 2.0, 4.0, 5.0]); // top-left taps
        assert_eq!(&cols[4..8], &[2.0, 3.0, 5.0, 6.0]);
        assert_eq!(&cols[8..12], &[4.0, 5.0, 7.0, 8.0]);
        assert_eq!(&cols[12..16], &[5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn im2col_padding_zeros() {
        let g = ConvGeom {
            c: 1,
            h: 2,
            w: 2,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        let input = vec![1.0, 2.0, 3.0, 4.0];
        let mut cols = vec![0.0; g.col_rows() * g.col_cols()];
        im2col(&input, &g, &mut cols);
        // Center tap (ki=1, kj=1) row must equal the input itself.
        let n = g.col_cols();
        assert_eq!(&cols[4 * n..5 * n], &input[..]);
        // Top-left tap at output (0,0) reads the padded corner → 0.
        assert_eq!(cols[0], 0.0);
    }

    #[test]
    fn col2im_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> on random-ish data.
        let g = ConvGeom {
            c: 2,
            h: 4,
            w: 5,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        let x: Vec<f64> = (0..g.c * g.h * g.w)
            .map(|i| ((i * 37 + 11) % 17) as f64 - 8.0)
            .collect();
        let y: Vec<f64> = (0..g.col_rows() * g.col_cols())
            .map(|i| ((i * 13 + 5) % 19) as f64 - 9.0)
            .collect();
        let mut cols = vec![0.0; y.len()];
        im2col(&x, &g, &mut cols);
        let lhs: f64 = cols.iter().zip(&y).map(|(a, b)| a * b).sum();
        let mut back = vec![0.0; x.len()];
        col2im(&y, &g, &mut back);
        let rhs: f64 = back.iter().zip(&x).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-9, "adjoint mismatch: {lhs} vs {rhs}");
    }

    #[test]
    fn stride_two_geometry_and_values() {
        let g = ConvGeom {
            c: 1,
            h: 4,
            w: 4,
            kh: 2,
            kw: 2,
            stride: 2,
            pad: 0,
        };
        assert_eq!((g.out_h(), g.out_w()), (2, 2));
        let input: Vec<f64> = (0..16).map(|x| x as f64).collect();
        let mut cols = vec![0.0; 4 * 4];
        im2col(&input, &g, &mut cols);
        // Tap (0,0) picks the even-even positions.
        assert_eq!(&cols[0..4], &[0.0, 2.0, 8.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "kernel")]
    fn validate_rejects_oversized_kernel() {
        let g = ConvGeom {
            c: 1,
            h: 2,
            w: 2,
            kh: 5,
            kw: 5,
            stride: 1,
            pad: 0,
        };
        g.validate();
    }
}
