//! Scalar fields on 2-D structured grids.
//!
//! [`Grid2`] is the exchange type between the Euler solver, the domain
//! decomposition and the network input pipeline: one physical quantity
//! (pressure, density, …) sampled on an `h × w` uniform grid, row-major with
//! row 0 at the bottom of the domain.

use std::ops::{Index, IndexMut};

/// A scalar field on an `h × w` structured grid (row-major).
#[derive(Clone, PartialEq, Debug)]
pub struct Grid2 {
    h: usize,
    w: usize,
    data: Vec<f64>,
}

impl Grid2 {
    /// All-zero field.
    pub fn zeros(h: usize, w: usize) -> Self {
        Self {
            h,
            w,
            data: vec![0.0; h * w],
        }
    }

    /// Constant field.
    pub fn constant(h: usize, w: usize, v: f64) -> Self {
        Self {
            h,
            w,
            data: vec![v; h * w],
        }
    }

    /// Field from an existing row-major buffer.
    ///
    /// # Panics
    /// If `data.len() != h * w`.
    pub fn from_vec(h: usize, w: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), h * w, "Grid2::from_vec: buffer length mismatch");
        Self { h, w, data }
    }

    /// Field built by evaluating `f(i, j)` (row, column) everywhere.
    pub fn from_fn(h: usize, w: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(h * w);
        for i in 0..h {
            for j in 0..w {
                data.push(f(i, j));
            }
        }
        Self { h, w, data }
    }

    /// Grid height (number of rows).
    #[inline]
    pub fn h(&self) -> usize {
        self.h
    }

    /// Grid width (number of columns).
    #[inline]
    pub fn w(&self) -> usize {
        self.w
    }

    /// `(h, w)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.h, self.w)
    }

    /// Total number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the grid has no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable row-major view.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the grid, returning the flat buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.h);
        &self.data[i * self.w..(i + 1) * self.w]
    }

    /// One row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.h);
        &mut self.data[i * self.w..(i + 1) * self.w]
    }

    /// Extracts the rectangle with top-left corner `(i0, j0)` and shape
    /// `(sh, sw)`.
    ///
    /// # Panics
    /// If the rectangle does not fit inside the grid.
    pub fn window(&self, i0: usize, j0: usize, sh: usize, sw: usize) -> Grid2 {
        assert!(
            i0 + sh <= self.h && j0 + sw <= self.w,
            "Grid2::window: rectangle ({i0},{j0})+({sh},{sw}) exceeds grid {}x{}",
            self.h,
            self.w
        );
        let mut out = Vec::with_capacity(sh * sw);
        for i in 0..sh {
            out.extend_from_slice(&self.row(i0 + i)[j0..j0 + sw]);
        }
        Grid2::from_vec(sh, sw, out)
    }

    /// Writes `patch` into the rectangle with top-left corner `(i0, j0)`.
    ///
    /// # Panics
    /// If the patch does not fit.
    pub fn set_window(&mut self, i0: usize, j0: usize, patch: &Grid2) {
        assert!(
            i0 + patch.h <= self.h && j0 + patch.w <= self.w,
            "Grid2::set_window: patch exceeds grid"
        );
        let w = self.w;
        for i in 0..patch.h {
            let dst = &mut self.data[(i0 + i) * w + j0..(i0 + i) * w + j0 + patch.w];
            dst.copy_from_slice(patch.row(i));
        }
    }

    /// Applies `f` to every value in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise `self += alpha * other`.
    ///
    /// # Panics
    /// If shapes differ.
    pub fn axpy(&mut self, alpha: f64, other: &Grid2) {
        assert_eq!(self.shape(), other.shape(), "Grid2::axpy: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Sum of all values.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Maximum absolute value (0 for an empty grid).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// Minimum and maximum values. Returns `(0, 0)` for an empty grid.
    pub fn min_max(&self) -> (f64, f64) {
        self.data
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| {
                (lo.min(x), hi.max(x))
            })
    }

    /// L2 norm of the difference with `other`, normalized by point count.
    pub fn rms_diff(&self, other: &Grid2) -> f64 {
        assert_eq!(
            self.shape(),
            other.shape(),
            "Grid2::rms_diff: shape mismatch"
        );
        let s: f64 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        (s / self.data.len() as f64).sqrt()
    }
}

impl Index<(usize, usize)> for Grid2 {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.h && j < self.w, "Grid2 index out of bounds");
        &self.data[i * self.w + j]
    }
}

impl IndexMut<(usize, usize)> for Grid2 {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.h && j < self.w, "Grid2 index out of bounds");
        &mut self.data[i * self.w + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_round_trip() {
        let g = Grid2::from_fn(6, 5, |i, j| (i * 10 + j) as f64);
        let w = g.window(2, 1, 3, 2);
        assert_eq!(w.shape(), (3, 2));
        assert_eq!(w[(0, 0)], 21.0);
        assert_eq!(w[(2, 1)], 42.0);
        let mut h = Grid2::zeros(6, 5);
        h.set_window(2, 1, &w);
        assert_eq!(h[(2, 1)], 21.0);
        assert_eq!(h[(4, 2)], 42.0);
        assert_eq!(h[(0, 0)], 0.0);
    }

    #[test]
    fn full_window_is_identity() {
        let g = Grid2::from_fn(4, 7, |i, j| (i + j) as f64);
        assert_eq!(g.window(0, 0, 4, 7), g);
    }

    #[test]
    #[should_panic(expected = "exceeds grid")]
    fn window_rejects_out_of_bounds() {
        let g = Grid2::zeros(3, 3);
        let _ = g.window(1, 1, 3, 1);
    }

    #[test]
    fn axpy_and_sum() {
        let mut a = Grid2::constant(2, 2, 1.0);
        let b = Grid2::constant(2, 2, 2.0);
        a.axpy(0.5, &b);
        assert_eq!(a.sum(), 8.0);
    }

    #[test]
    fn min_max_and_max_abs() {
        let g = Grid2::from_vec(1, 4, vec![-3.0, 0.0, 2.0, 1.0]);
        assert_eq!(g.min_max(), (-3.0, 2.0));
        assert_eq!(g.max_abs(), 3.0);
    }

    #[test]
    fn rms_diff_zero_for_equal() {
        let g = Grid2::from_fn(3, 3, |i, j| (i * j) as f64);
        assert_eq!(g.rms_diff(&g), 0.0);
    }
}
