//! Explicit SIMD micro-kernels for the GEMM driver (`x86_64` only).
//!
//! Two instruction-set tiers, selected at runtime by [`crate::gemm`]:
//!
//! * **AVX-512** — the primary path. Row-major B (`Trans::N`) is consumed
//!   *in place* ("direct-B"): profiling showed packing B costs as much as
//!   all the FMA work at this workspace's shapes (m ≤ 16), so the micro-
//!   kernel reads 16-column B rows straight from the operand with stride
//!   `n`, and only A is packed. Full tiles run an `8 × 16` kernel (16 zmm
//!   accumulators); the column remainder uses masked loads/stores; `m ≤ 4`
//!   shapes run a dedicated 4-row kernel so the register file is not wasted
//!   on zero padding (the old scalar `small_m` cliff, ISSUE 6 satellite 1).
//! * **AVX2+FMA** — compatibility fallback with the same structure at
//!   `4 × 8` tiles and `maskload`/`maskstore` edges.
//!
//! Transposed B (`Trans::T`) keeps the packed-strip scheme — packing *is*
//! the transpose — with SIMD kernels consuming one `NR`-interleaved strip
//! per step.
//!
//! **Bitwise contract with the scalar path:** every output element is
//! accumulated from 0.0 in a `p`-ascending chain of fused multiply-adds and
//! added into C exactly once per KC block — the same chain the scalar
//! micro-kernel executes — so scalar and SIMD paths (and every tile width)
//! produce bit-identical results. `tests/kernel_paths.rs` asserts exact
//! equality.
//!
//! C is addressed through a raw base pointer plus row stride rather than
//! `&mut` slices, so concurrent pool chunks — which own disjoint column
//! ranges of the same sample — never materialize overlapping mutable
//! references.

#![cfg(target_arch = "x86_64")]

use std::arch::x86_64::*;

/// Columns per full AVX-512 direct tile (two zmm vectors).
pub(crate) const TILE_512: usize = 16;
/// Columns per full AVX2 direct tile (two ymm vectors).
pub(crate) const TILE_AVX2: usize = 8;

// ---------------------------------------------------------------------------
// AVX-512: packing
// ---------------------------------------------------------------------------

/// Transposes one 8×8 block held in registers (row r, element p → output
/// vector p, lane r): unpack pairs, then two `permutex2var` rounds.
#[inline]
#[target_feature(enable = "avx512f")]
unsafe fn transpose8x8(r: [__m512d; 8]) -> [__m512d; 8] {
    let t0 = _mm512_unpacklo_pd(r[0], r[1]);
    let t1 = _mm512_unpackhi_pd(r[0], r[1]);
    let t2 = _mm512_unpacklo_pd(r[2], r[3]);
    let t3 = _mm512_unpackhi_pd(r[2], r[3]);
    let t4 = _mm512_unpacklo_pd(r[4], r[5]);
    let t5 = _mm512_unpackhi_pd(r[4], r[5]);
    let t6 = _mm512_unpacklo_pd(r[6], r[7]);
    let t7 = _mm512_unpackhi_pd(r[6], r[7]);
    let idx_lo = _mm512_setr_epi64(0, 1, 8, 9, 4, 5, 12, 13);
    let idx_hi = _mm512_setr_epi64(2, 3, 10, 11, 6, 7, 14, 15);
    let u0 = _mm512_permutex2var_pd(t0, idx_lo, t2);
    let u1 = _mm512_permutex2var_pd(t1, idx_lo, t3);
    let u2 = _mm512_permutex2var_pd(t0, idx_hi, t2);
    let u3 = _mm512_permutex2var_pd(t1, idx_hi, t3);
    let u4 = _mm512_permutex2var_pd(t4, idx_lo, t6);
    let u5 = _mm512_permutex2var_pd(t5, idx_lo, t7);
    let u6 = _mm512_permutex2var_pd(t4, idx_hi, t6);
    let u7 = _mm512_permutex2var_pd(t5, idx_hi, t7);
    let idx_l = _mm512_setr_epi64(0, 1, 2, 3, 8, 9, 10, 11);
    let idx_h = _mm512_setr_epi64(4, 5, 6, 7, 12, 13, 14, 15);
    [
        _mm512_permutex2var_pd(u0, idx_l, u4),
        _mm512_permutex2var_pd(u1, idx_l, u5),
        _mm512_permutex2var_pd(u2, idx_l, u6),
        _mm512_permutex2var_pd(u3, idx_l, u7),
        _mm512_permutex2var_pd(u0, idx_h, u4),
        _mm512_permutex2var_pd(u1, idx_h, u5),
        _mm512_permutex2var_pd(u2, idx_h, u6),
        _mm512_permutex2var_pd(u3, idx_h, u7),
    ]
}

/// Vectorized A packing for one *full* 8-row `Trans::N` panel: rows
/// `i0..i0+8`, shared columns `p0..p0+kc` of the row-major matrix `a`
/// (row stride `k`), written `p`-major into `panel` (element `(p, r)` at
/// `p*8 + r`). 8×8 blocks transpose in registers; the `kc % 8` tail falls
/// back to scalar stores. Pure data movement — bit-identical to the scalar
/// packer.
///
/// # Safety
/// Requires AVX-512F. All 8 source rows must exist (`i0 + 8 ≤ m`) and
/// `panel` must hold at least `kc * 8` elements.
#[target_feature(enable = "avx512f")]
pub(crate) unsafe fn pack_a8_n_512(
    a: &[f64],
    k: usize,
    i0: usize,
    p0: usize,
    kc: usize,
    panel: &mut [f64],
) {
    debug_assert!(panel.len() >= kc * 8);
    debug_assert!((i0 + 7) * k + p0 + kc <= a.len());
    let base = unsafe { a.as_ptr().add(i0 * k + p0) };
    let out = panel.as_mut_ptr();
    let mut p = 0;
    while p + 8 <= kc {
        // SAFETY: rows i0..i0+8, columns p0+p..p0+p+8 are in bounds.
        unsafe {
            let rows = [
                _mm512_loadu_pd(base.add(p)),
                _mm512_loadu_pd(base.add(k + p)),
                _mm512_loadu_pd(base.add(2 * k + p)),
                _mm512_loadu_pd(base.add(3 * k + p)),
                _mm512_loadu_pd(base.add(4 * k + p)),
                _mm512_loadu_pd(base.add(5 * k + p)),
                _mm512_loadu_pd(base.add(6 * k + p)),
                _mm512_loadu_pd(base.add(7 * k + p)),
            ];
            let cols = transpose8x8(rows);
            _mm512_storeu_pd(out.add(p * 8), cols[0]);
            _mm512_storeu_pd(out.add((p + 1) * 8), cols[1]);
            _mm512_storeu_pd(out.add((p + 2) * 8), cols[2]);
            _mm512_storeu_pd(out.add((p + 3) * 8), cols[3]);
            _mm512_storeu_pd(out.add((p + 4) * 8), cols[4]);
            _mm512_storeu_pd(out.add((p + 5) * 8), cols[5]);
            _mm512_storeu_pd(out.add((p + 6) * 8), cols[6]);
            _mm512_storeu_pd(out.add((p + 7) * 8), cols[7]);
        }
        p += 8;
    }
    while p < kc {
        for r in 0..8 {
            panel[p * 8 + r] = a[(i0 + r) * k + p0 + p];
        }
        p += 1;
    }
}

// ---------------------------------------------------------------------------
// AVX-512: direct-B kernels (Trans::N)
// ---------------------------------------------------------------------------

/// Direct-B full tile: `MR` rows × [`TILE_512`] columns, B read in place.
/// `b` points at B's block row (`b[p*n + j]` is element `(p0+p, j)`).
///
/// # Safety
/// Requires AVX-512F; `ap` holds a `kc × MR` panel; B columns `j0..j0+16`
/// exist; C rows `i0..i0+mr_eff`, columns `j0..j0+16` are exclusively owned.
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn direct_full_512<const MR: usize>(
    ap: &[f64],
    b: *const f64,
    n: usize,
    kc: usize,
    c: *mut f64,
    i0: usize,
    j0: usize,
    mr_eff: usize,
) {
    let mut acc0 = [_mm512_setzero_pd(); MR];
    let mut acc1 = [_mm512_setzero_pd(); MR];
    let mut a = ap.as_ptr();
    let mut bp = unsafe { b.add(j0) };
    for _ in 0..kc {
        // SAFETY: caller bounds; the r-loop unrolls fully (MR is const).
        unsafe {
            let bv0 = _mm512_loadu_pd(bp);
            let bv1 = _mm512_loadu_pd(bp.add(8));
            for r in 0..MR {
                let av = _mm512_set1_pd(*a.add(r));
                acc0[r] = _mm512_fmadd_pd(av, bv0, acc0[r]);
                acc1[r] = _mm512_fmadd_pd(av, bv1, acc1[r]);
            }
            a = a.add(MR);
            bp = bp.add(n);
        }
    }
    for r in 0..mr_eff {
        // SAFETY: this tile owns C rows i0..i0+mr_eff, columns j0..j0+16.
        unsafe {
            let cp = c.add((i0 + r) * n + j0);
            _mm512_storeu_pd(cp, _mm512_add_pd(_mm512_loadu_pd(cp), acc0[r]));
            _mm512_storeu_pd(
                cp.add(8),
                _mm512_add_pd(_mm512_loadu_pd(cp.add(8)), acc1[r]),
            );
        }
    }
}

/// Direct-B edge tile: `MR` rows × `nr_eff < 16` columns via masked
/// loads/stores — no scalar remainder loop, no out-of-bounds touches.
///
/// # Safety
/// As [`direct_full_512`], with B/C columns `j0..j0+nr_eff` in bounds.
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn direct_edge_512<const MR: usize>(
    ap: &[f64],
    b: *const f64,
    n: usize,
    kc: usize,
    c: *mut f64,
    i0: usize,
    j0: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    let w0 = nr_eff.min(8);
    let w1 = nr_eff - w0;
    let m0: __mmask8 = (1u16 << w0).wrapping_sub(1) as __mmask8;
    let m1: __mmask8 = (1u16 << w1).wrapping_sub(1) as __mmask8;
    let mut acc0 = [_mm512_setzero_pd(); MR];
    let mut acc1 = [_mm512_setzero_pd(); MR];
    let mut a = ap.as_ptr();
    let mut bp = unsafe { b.add(j0) };
    for _ in 0..kc {
        // SAFETY: masked lanes never touch memory beyond column j0+nr_eff.
        unsafe {
            let bv0 = _mm512_maskz_loadu_pd(m0, bp);
            let bv1 = if w1 > 0 {
                _mm512_maskz_loadu_pd(m1, bp.add(8))
            } else {
                _mm512_setzero_pd()
            };
            for r in 0..MR {
                let av = _mm512_set1_pd(*a.add(r));
                acc0[r] = _mm512_fmadd_pd(av, bv0, acc0[r]);
                acc1[r] = _mm512_fmadd_pd(av, bv1, acc1[r]);
            }
            a = a.add(MR);
            bp = bp.add(n);
        }
    }
    for r in 0..mr_eff {
        // SAFETY: masked read-modify-write of the owned C edge tile.
        unsafe {
            let cp = c.add((i0 + r) * n + j0);
            let prev0 = _mm512_maskz_loadu_pd(m0, cp);
            _mm512_mask_storeu_pd(cp, m0, _mm512_add_pd(prev0, acc0[r]));
            if w1 > 0 {
                let prev1 = _mm512_maskz_loadu_pd(m1, cp.add(8));
                _mm512_mask_storeu_pd(cp.add(8), m1, _mm512_add_pd(prev1, acc1[r]));
            }
        }
    }
}

/// Direct-B sweep of C columns `j_lo..j_hi` for one sample / KC block on the
/// AVX-512 path: full 16-wide tiles, then one masked edge column group. `mr`
/// is the packed panel height (8, or 4 for small-`m` shapes).
///
/// # Safety
/// Requires AVX-512F; `abuf` holds `ceil(m/mr)` packed `kc × mr` panels;
/// `b` points at B's block row with row stride `n`; the caller owns C
/// columns `j_lo..j_hi` (row stride `n`) exclusively.
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn direct_block_512(
    abuf: &[f64],
    mr: usize,
    m: usize,
    kc: usize,
    b: *const f64,
    n: usize,
    c: *mut f64,
    j_lo: usize,
    j_hi: usize,
) {
    debug_assert!(mr == 8 || mr == 4);
    let m_panels = m.div_ceil(mr);
    let mut j0 = j_lo;
    while j0 + TILE_512 <= j_hi {
        for ip in 0..m_panels {
            let ap = &abuf[ip * kc * mr..][..kc * mr];
            let (i0, mr_eff) = (ip * mr, mr.min(m - ip * mr));
            // SAFETY: per-tile bounds established above.
            unsafe {
                if mr == 8 {
                    direct_full_512::<8>(ap, b, n, kc, c, i0, j0, mr_eff);
                } else {
                    direct_full_512::<4>(ap, b, n, kc, c, i0, j0, mr_eff);
                }
            }
        }
        j0 += TILE_512;
    }
    if j0 < j_hi {
        let nr_eff = j_hi - j0;
        for ip in 0..m_panels {
            let ap = &abuf[ip * kc * mr..][..kc * mr];
            let (i0, mr_eff) = (ip * mr, mr.min(m - ip * mr));
            // SAFETY: masked edge stays within columns j0..j_hi.
            unsafe {
                if mr == 8 {
                    direct_edge_512::<8>(ap, b, n, kc, c, i0, j0, mr_eff, nr_eff);
                } else {
                    direct_edge_512::<4>(ap, b, n, kc, c, i0, j0, mr_eff, nr_eff);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// AVX-512: packed-strip kernel (Trans::T)
// ---------------------------------------------------------------------------

/// Packed-strip tile on AVX-512: `MR` rows × one NR=8-wide packed strip
/// (one zmm load per shared step). Edge columns use a masked C
/// read-modify-write; the zero-padded strip keeps dead accumulator lanes
/// at exactly 0.0.
///
/// # Safety
/// Requires AVX-512F; `ap` is a `kc × MR` panel, `strip` a `kc × 8` packed
/// strip; the caller owns the addressed C tile (row stride `ldc`)
/// exclusively.
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
unsafe fn packed_micro_512<const MR: usize>(
    ap: &[f64],
    strip: &[f64],
    kc: usize,
    c: *mut f64,
    i0: usize,
    j0: usize,
    mr_eff: usize,
    nr_eff: usize,
    ldc: usize,
) {
    let mut acc = [_mm512_setzero_pd(); MR];
    let mut a = ap.as_ptr();
    let mut bp = strip.as_ptr();
    for _ in 0..kc {
        // SAFETY: panel and strip both hold kc steps.
        unsafe {
            let bv = _mm512_loadu_pd(bp);
            for r in 0..MR {
                let av = _mm512_set1_pd(*a.add(r));
                acc[r] = _mm512_fmadd_pd(av, bv, acc[r]);
            }
            a = a.add(MR);
            bp = bp.add(8);
        }
    }
    if nr_eff == 8 {
        for r in 0..mr_eff {
            // SAFETY: full-width owned C tile.
            unsafe {
                let cp = c.add((i0 + r) * ldc + j0);
                _mm512_storeu_pd(cp, _mm512_add_pd(_mm512_loadu_pd(cp), acc[r]));
            }
        }
    } else {
        let mask: __mmask8 = (1u16 << nr_eff).wrapping_sub(1) as __mmask8;
        for r in 0..mr_eff {
            // SAFETY: masked lanes stay within the owned C edge.
            unsafe {
                let cp = c.add((i0 + r) * ldc + j0);
                let prev = _mm512_maskz_loadu_pd(mask, cp);
                _mm512_mask_storeu_pd(cp, mask, _mm512_add_pd(prev, acc[r]));
            }
        }
    }
}

/// Panel-height dispatch for [`packed_micro_512`].
///
/// # Safety
/// As [`packed_micro_512`]; `mr` must be 8 or 4 and match `ap`'s layout.
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn packed_strip_512(
    ap: &[f64],
    mr: usize,
    strip: &[f64],
    kc: usize,
    c: *mut f64,
    i0: usize,
    j0: usize,
    mr_eff: usize,
    nr_eff: usize,
    ldc: usize,
) {
    debug_assert!(mr == 8 || mr == 4);
    // SAFETY: forwarded caller contract.
    unsafe {
        if mr == 8 {
            packed_micro_512::<8>(ap, strip, kc, c, i0, j0, mr_eff, nr_eff, ldc);
        } else {
            packed_micro_512::<4>(ap, strip, kc, c, i0, j0, mr_eff, nr_eff, ldc);
        }
    }
}

// ---------------------------------------------------------------------------
// AVX2 + FMA
// ---------------------------------------------------------------------------

/// Lane mask for `_mm256_maskload_pd`/`_mm256_maskstore_pd`: the first
/// `w ∈ 1..=4` lanes active.
#[target_feature(enable = "avx2")]
unsafe fn mask4(w: usize) -> __m256i {
    match w {
        1 => _mm256_setr_epi64x(-1, 0, 0, 0),
        2 => _mm256_setr_epi64x(-1, -1, 0, 0),
        3 => _mm256_setr_epi64x(-1, -1, -1, 0),
        _ => _mm256_setr_epi64x(-1, -1, -1, -1),
    }
}

/// Direct-B full tile on AVX2: 4 rows × [`TILE_AVX2`] columns (two ymm
/// accumulator columns), B read in place with row stride `n`.
///
/// # Safety
/// Requires AVX2+FMA; `ap` holds a `kc × 4` panel; B columns `j0..j0+8`
/// exist; C rows `i0..i0+mr_eff`, columns `j0..j0+8` are exclusively owned.
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn direct_full_avx2(
    ap: &[f64],
    b: *const f64,
    n: usize,
    kc: usize,
    c: *mut f64,
    i0: usize,
    j0: usize,
    mr_eff: usize,
) {
    const MR: usize = 4;
    let mut acc0 = [_mm256_setzero_pd(); MR];
    let mut acc1 = [_mm256_setzero_pd(); MR];
    let mut a = ap.as_ptr();
    let mut bp = unsafe { b.add(j0) };
    for _ in 0..kc {
        // SAFETY: caller bounds.
        unsafe {
            let bv0 = _mm256_loadu_pd(bp);
            let bv1 = _mm256_loadu_pd(bp.add(4));
            for r in 0..MR {
                let av = _mm256_set1_pd(*a.add(r));
                acc0[r] = _mm256_fmadd_pd(av, bv0, acc0[r]);
                acc1[r] = _mm256_fmadd_pd(av, bv1, acc1[r]);
            }
            a = a.add(MR);
            bp = bp.add(n);
        }
    }
    for r in 0..mr_eff {
        // SAFETY: owned C tile.
        unsafe {
            let cp = c.add((i0 + r) * n + j0);
            _mm256_storeu_pd(cp, _mm256_add_pd(_mm256_loadu_pd(cp), acc0[r]));
            _mm256_storeu_pd(
                cp.add(4),
                _mm256_add_pd(_mm256_loadu_pd(cp.add(4)), acc1[r]),
            );
        }
    }
}

/// Direct-B edge tile on AVX2: 4 rows × `nr_eff < 8` columns via
/// `maskload`/`maskstore`.
///
/// # Safety
/// As [`direct_full_avx2`], with B/C columns `j0..j0+nr_eff` in bounds.
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn direct_edge_avx2(
    ap: &[f64],
    b: *const f64,
    n: usize,
    kc: usize,
    c: *mut f64,
    i0: usize,
    j0: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    const MR: usize = 4;
    let w0 = nr_eff.min(4);
    let w1 = nr_eff - w0;
    let m0 = unsafe { mask4(w0) };
    let mut acc0 = [_mm256_setzero_pd(); MR];
    let mut acc1 = [_mm256_setzero_pd(); MR];
    let mut a = ap.as_ptr();
    let mut bp = unsafe { b.add(j0) };
    for _ in 0..kc {
        // SAFETY: masked lanes never read beyond column j0+nr_eff.
        unsafe {
            let bv0 = _mm256_maskload_pd(bp, m0);
            let bv1 = if w1 > 0 {
                _mm256_maskload_pd(bp.add(4), mask4(w1))
            } else {
                _mm256_setzero_pd()
            };
            for r in 0..MR {
                let av = _mm256_set1_pd(*a.add(r));
                acc0[r] = _mm256_fmadd_pd(av, bv0, acc0[r]);
                acc1[r] = _mm256_fmadd_pd(av, bv1, acc1[r]);
            }
            a = a.add(MR);
            bp = bp.add(n);
        }
    }
    for r in 0..mr_eff {
        // SAFETY: masked read-modify-write of the owned C edge.
        unsafe {
            let cp = c.add((i0 + r) * n + j0);
            let prev0 = _mm256_maskload_pd(cp, m0);
            _mm256_maskstore_pd(cp, m0, _mm256_add_pd(prev0, acc0[r]));
            if w1 > 0 {
                let m1 = mask4(w1);
                let prev1 = _mm256_maskload_pd(cp.add(4), m1);
                _mm256_maskstore_pd(cp.add(4), m1, _mm256_add_pd(prev1, acc1[r]));
            }
        }
    }
}

/// Direct-B sweep of C columns `j_lo..j_hi` on the AVX2 path (4-row panels,
/// 8-wide tiles, masked edge).
///
/// # Safety
/// Requires AVX2+FMA; `abuf` holds `ceil(m/4)` packed `kc × 4` panels; `b`
/// points at B's block row with row stride `n`; the caller owns C columns
/// `j_lo..j_hi` (row stride `n`) exclusively.
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn direct_block_avx2(
    abuf: &[f64],
    m: usize,
    kc: usize,
    b: *const f64,
    n: usize,
    c: *mut f64,
    j_lo: usize,
    j_hi: usize,
) {
    const MR: usize = 4;
    let m_panels = m.div_ceil(MR);
    let mut j0 = j_lo;
    while j0 + TILE_AVX2 <= j_hi {
        for ip in 0..m_panels {
            let ap = &abuf[ip * kc * MR..][..kc * MR];
            // SAFETY: per-tile bounds established above.
            unsafe {
                direct_full_avx2(ap, b, n, kc, c, ip * MR, j0, MR.min(m - ip * MR));
            }
        }
        j0 += TILE_AVX2;
    }
    if j0 < j_hi {
        let nr_eff = j_hi - j0;
        for ip in 0..m_panels {
            let ap = &abuf[ip * kc * MR..][..kc * MR];
            // SAFETY: masked edge stays within columns j0..j_hi.
            unsafe {
                direct_edge_avx2(ap, b, n, kc, c, ip * MR, j0, MR.min(m - ip * MR), nr_eff);
            }
        }
    }
}

/// Packed-strip tile on AVX2: 4 rows × one NR=8-wide packed strip (two ymm
/// strip loads per shared step).
///
/// # Safety
/// Requires AVX2+FMA; `ap` is a `kc × 4` panel, `strip` a `kc × 8` packed
/// strip; the caller owns the addressed C tile (row stride `ldc`)
/// exclusively.
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn packed_strip_avx2(
    ap: &[f64],
    strip: &[f64],
    kc: usize,
    c: *mut f64,
    i0: usize,
    j0: usize,
    mr_eff: usize,
    nr_eff: usize,
    ldc: usize,
) {
    const MR: usize = 4;
    let mut acc0 = [_mm256_setzero_pd(); MR];
    let mut acc1 = [_mm256_setzero_pd(); MR];
    let mut a = ap.as_ptr();
    let mut bp = strip.as_ptr();
    for _ in 0..kc {
        // SAFETY: panel and strip both hold kc steps.
        unsafe {
            let bv0 = _mm256_loadu_pd(bp);
            let bv1 = _mm256_loadu_pd(bp.add(4));
            for r in 0..MR {
                let av = _mm256_set1_pd(*a.add(r));
                acc0[r] = _mm256_fmadd_pd(av, bv0, acc0[r]);
                acc1[r] = _mm256_fmadd_pd(av, bv1, acc1[r]);
            }
            a = a.add(MR);
            bp = bp.add(8);
        }
    }
    if nr_eff == 8 {
        for r in 0..mr_eff {
            // SAFETY: full-width owned C tile.
            unsafe {
                let cp = c.add((i0 + r) * ldc + j0);
                _mm256_storeu_pd(cp, _mm256_add_pd(_mm256_loadu_pd(cp), acc0[r]));
                _mm256_storeu_pd(
                    cp.add(4),
                    _mm256_add_pd(_mm256_loadu_pd(cp.add(4)), acc1[r]),
                );
            }
        }
    } else {
        let w0 = nr_eff.min(4);
        let w1 = nr_eff - w0;
        for r in 0..mr_eff {
            // SAFETY: masked read-modify-write of the owned C edge.
            unsafe {
                let cp = c.add((i0 + r) * ldc + j0);
                let m0 = mask4(w0);
                let prev0 = _mm256_maskload_pd(cp, m0);
                _mm256_maskstore_pd(cp, m0, _mm256_add_pd(prev0, acc0[r]));
                if w1 > 0 {
                    let m1 = mask4(w1);
                    let prev1 = _mm256_maskload_pd(cp.add(4), m1);
                    _mm256_maskstore_pd(cp.add(4), m1, _mm256_add_pd(prev1, acc1[r]));
                }
            }
        }
    }
}
