//! Small statistics helpers shared by accuracy metrics and tests.

/// Mean of a slice (NaN for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance.
pub fn variance(xs: &[f64]) -> f64 {
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Pearson correlation coefficient between two equally long slices.
///
/// Returns 0 when either input is constant (no linear relation definable).
///
/// # Panics
/// If the slices differ in length or are empty.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson: length mismatch");
    assert!(!a.is_empty(), "pearson: empty input");
    let (ma, mb) = (mean(a), mean(b));
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        num += (x - ma) * (y - mb);
        da += (x - ma) * (x - ma);
        db += (y - mb) * (y - mb);
    }
    if da == 0.0 || db == 0.0 {
        0.0
    } else {
        num / (da * db).sqrt()
    }
}

/// Root-mean-square error between prediction and target.
pub fn rmse(pred: &[f64], target: &[f64]) -> f64 {
    assert_eq!(pred.len(), target.len(), "rmse: length mismatch");
    let s: f64 = pred
        .iter()
        .zip(target)
        .map(|(p, t)| (p - t) * (p - t))
        .sum();
    (s / pred.len() as f64).sqrt()
}

/// Maximum absolute error.
pub fn max_abs_err(pred: &[f64], target: &[f64]) -> f64 {
    assert_eq!(pred.len(), target.len(), "max_abs_err: length mismatch");
    pred.iter()
        .zip(target)
        .fold(0.0, |m, (p, t)| m.max((p - t).abs()))
}

/// Mean absolute percentage error in percent, with an absolute floor on the
/// denominator to keep near-zero targets from exploding the metric.
///
/// This mirrors the paper's Eq. (7) with the standard epsilon guard used by
/// practical MAPE implementations.
pub fn mape(pred: &[f64], target: &[f64], floor: f64) -> f64 {
    assert_eq!(pred.len(), target.len(), "mape: length mismatch");
    let s: f64 = pred
        .iter()
        .zip(target)
        .map(|(p, t)| (p - t).abs() / t.abs().max(floor))
        .sum();
    100.0 * s / pred.len() as f64
}

/// Simple online accumulator for min/max/mean/std over streamed values.
#[derive(Clone, Debug, Default)]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Feeds one observation (Welford update).
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation (0 when fewer than 2 observations).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// Smallest observation (∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_var_known() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert!((std_dev(&xs) - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [3.0, 2.0, 1.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_input_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn rmse_and_max_err() {
        let p = [1.0, 2.0];
        let t = [0.0, 4.0];
        assert!((rmse(&p, &t) - (2.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(max_abs_err(&p, &t), 2.0);
    }

    #[test]
    fn mape_with_floor() {
        // Target 0 would divide by zero without the floor.
        let p = [1.0, 1.1];
        let t = [0.0, 1.0];
        let m = mape(&p, &t, 0.5);
        // |1-0|/0.5 = 2 ; |1.1-1|/1 = 0.1 → mean 1.05 → 105 %.
        assert!((m - 105.0).abs() < 1e-9);
    }

    #[test]
    fn accumulator_matches_batch_stats() {
        let xs = [3.0, -1.0, 4.0, 1.0, 5.0, 9.0];
        let mut acc = Accumulator::new();
        for &x in &xs {
            acc.push(x);
        }
        assert_eq!(acc.count(), 6);
        assert!((acc.mean() - mean(&xs)).abs() < 1e-12);
        assert!((acc.std_dev() - std_dev(&xs)).abs() < 1e-12);
        assert_eq!(acc.min(), -1.0);
        assert_eq!(acc.max(), 9.0);
    }
}
