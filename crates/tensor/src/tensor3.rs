//! Single-sample tensors in `(C, H, W)` layout.
//!
//! A [`Tensor3`] is one multi-channel snapshot — e.g. the four physical
//! fields (pressure, density, u, v) of one time step on a subdomain. The
//! solver produces them, the domain decomposition slices them, and the
//! network consumes batches of them (see [`crate::Tensor4`]).

use crate::Grid2;
use std::ops::{Index, IndexMut};

/// A `(C, H, W)` tensor: `c` channels of an `h × w` grid, channel-major.
#[derive(Clone, PartialEq, Debug)]
pub struct Tensor3 {
    c: usize,
    h: usize,
    w: usize,
    data: Vec<f64>,
}

impl Tensor3 {
    /// All-zero tensor.
    pub fn zeros(c: usize, h: usize, w: usize) -> Self {
        Self {
            c,
            h,
            w,
            data: vec![0.0; c * h * w],
        }
    }

    /// Tensor from an existing `(C, H, W)`-ordered buffer.
    ///
    /// # Panics
    /// If `data.len() != c * h * w`.
    pub fn from_vec(c: usize, h: usize, w: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            c * h * w,
            "Tensor3::from_vec: buffer length mismatch"
        );
        Self { c, h, w, data }
    }

    /// Tensor built by evaluating `f(c, i, j)` everywhere.
    pub fn from_fn(
        c: usize,
        h: usize,
        w: usize,
        mut f: impl FnMut(usize, usize, usize) -> f64,
    ) -> Self {
        let mut data = Vec::with_capacity(c * h * w);
        for ch in 0..c {
            for i in 0..h {
                for j in 0..w {
                    data.push(f(ch, i, j));
                }
            }
        }
        Self { c, h, w, data }
    }

    /// Concatenates tensors along the channel axis (all must share spatial
    /// dims). Used by time-window inputs (multiple snapshots stacked as
    /// channels).
    ///
    /// # Panics
    /// If `parts` is empty or spatial shapes disagree.
    pub fn concat_channels(parts: &[&Tensor3]) -> Tensor3 {
        assert!(!parts.is_empty(), "Tensor3::concat_channels: no parts");
        let (h, w) = (parts[0].h, parts[0].w);
        let total_c: usize = parts.iter().map(|p| p.c).sum();
        let mut data = Vec::with_capacity(total_c * h * w);
        for p in parts {
            assert_eq!(
                (p.h, p.w),
                (h, w),
                "Tensor3::concat_channels: spatial mismatch"
            );
            data.extend_from_slice(p.as_slice());
        }
        Tensor3::from_vec(total_c, h, w, data)
    }

    /// Stacks per-channel grids into one tensor.
    ///
    /// # Panics
    /// If the grids do not all share one shape, or `grids` is empty.
    pub fn from_channels(grids: &[Grid2]) -> Self {
        assert!(!grids.is_empty(), "Tensor3::from_channels: no channels");
        let (h, w) = grids[0].shape();
        let mut data = Vec::with_capacity(grids.len() * h * w);
        for g in grids {
            assert_eq!(
                g.shape(),
                (h, w),
                "Tensor3::from_channels: inconsistent channel shapes"
            );
            data.extend_from_slice(g.as_slice());
        }
        Self {
            c: grids.len(),
            h,
            w,
            data,
        }
    }

    /// Number of channels.
    #[inline]
    pub fn c(&self) -> usize {
        self.c
    }

    /// Grid height.
    #[inline]
    pub fn h(&self) -> usize {
        self.h
    }

    /// Grid width.
    #[inline]
    pub fn w(&self) -> usize {
        self.w
    }

    /// `(c, h, w)` triple.
    #[inline]
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.c, self.h, self.w)
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat `(C, H, W)`-ordered view.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable view.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the tensor, returning the flat buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrows one channel plane as a flat `h*w` slice.
    #[inline]
    pub fn channel(&self, ch: usize) -> &[f64] {
        debug_assert!(ch < self.c);
        &self.data[ch * self.h * self.w..(ch + 1) * self.h * self.w]
    }

    /// Mutably borrows one channel plane.
    #[inline]
    pub fn channel_mut(&mut self, ch: usize) -> &mut [f64] {
        debug_assert!(ch < self.c);
        &mut self.data[ch * self.h * self.w..(ch + 1) * self.h * self.w]
    }

    /// Copies one channel out as a [`Grid2`].
    pub fn channel_grid(&self, ch: usize) -> Grid2 {
        Grid2::from_vec(self.h, self.w, self.channel(ch).to_vec())
    }

    /// Overwrites one channel from a [`Grid2`].
    ///
    /// # Panics
    /// If the grid shape differs from `(h, w)`.
    pub fn set_channel(&mut self, ch: usize, g: &Grid2) {
        assert_eq!(
            g.shape(),
            (self.h, self.w),
            "Tensor3::set_channel: shape mismatch"
        );
        self.channel_mut(ch).copy_from_slice(g.as_slice());
    }

    /// Extracts the spatial window `(i0..i0+sh, j0..j0+sw)` across all
    /// channels.
    ///
    /// # Panics
    /// If the window exceeds the spatial extent.
    pub fn window(&self, i0: usize, j0: usize, sh: usize, sw: usize) -> Tensor3 {
        assert!(
            i0 + sh <= self.h && j0 + sw <= self.w,
            "Tensor3::window: rectangle exceeds {}x{}",
            self.h,
            self.w
        );
        let mut out = Vec::with_capacity(self.c * sh * sw);
        for ch in 0..self.c {
            let plane = self.channel(ch);
            for i in 0..sh {
                let start = (i0 + i) * self.w + j0;
                out.extend_from_slice(&plane[start..start + sw]);
            }
        }
        Tensor3::from_vec(self.c, sh, sw, out)
    }

    /// Writes `patch` into the spatial window at `(i0, j0)` across all
    /// channels.
    ///
    /// # Panics
    /// If channel counts differ or the patch exceeds the spatial extent.
    pub fn set_window(&mut self, i0: usize, j0: usize, patch: &Tensor3) {
        assert_eq!(self.c, patch.c, "Tensor3::set_window: channel mismatch");
        assert!(
            i0 + patch.h <= self.h && j0 + patch.w <= self.w,
            "Tensor3::set_window: patch exceeds tensor"
        );
        let (h, w) = (self.h, self.w);
        for ch in 0..self.c {
            let dst_plane = &mut self.data[ch * h * w..(ch + 1) * h * w];
            let src_plane = patch.channel(ch);
            for i in 0..patch.h {
                let d0 = (i0 + i) * w + j0;
                dst_plane[d0..d0 + patch.w]
                    .copy_from_slice(&src_plane[i * patch.w..(i + 1) * patch.w]);
            }
        }
    }

    /// Applies `f` to every value in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f64, other: &Tensor3) {
        assert_eq!(self.shape(), other.shape(), "Tensor3::axpy: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Maximum absolute value.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }
}

impl Index<(usize, usize, usize)> for Tensor3 {
    type Output = f64;
    #[inline]
    fn index(&self, (c, i, j): (usize, usize, usize)) -> &f64 {
        debug_assert!(
            c < self.c && i < self.h && j < self.w,
            "Tensor3 index out of bounds"
        );
        &self.data[(c * self.h + i) * self.w + j]
    }
}

impl IndexMut<(usize, usize, usize)> for Tensor3 {
    #[inline]
    fn index_mut(&mut self, (c, i, j): (usize, usize, usize)) -> &mut f64 {
        debug_assert!(
            c < self.c && i < self.h && j < self.w,
            "Tensor3 index out of bounds"
        );
        &mut self.data[(c * self.h + i) * self.w + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_round_trip() {
        let g0 = Grid2::from_fn(3, 4, |i, j| (i * 4 + j) as f64);
        let g1 = Grid2::from_fn(3, 4, |i, j| -((i * 4 + j) as f64));
        let t = Tensor3::from_channels(&[g0.clone(), g1.clone()]);
        assert_eq!(t.shape(), (2, 3, 4));
        assert_eq!(t.channel_grid(0), g0);
        assert_eq!(t.channel_grid(1), g1);
    }

    #[test]
    fn window_matches_grid_window_per_channel() {
        let t = Tensor3::from_fn(3, 5, 6, |c, i, j| (c * 100 + i * 10 + j) as f64);
        let w = t.window(1, 2, 3, 3);
        for c in 0..3 {
            assert_eq!(w.channel_grid(c), t.channel_grid(c).window(1, 2, 3, 3));
        }
    }

    #[test]
    fn set_window_round_trip() {
        let mut t = Tensor3::zeros(2, 4, 4);
        let patch = Tensor3::from_fn(2, 2, 2, |c, i, j| (c + i + j) as f64 + 1.0);
        t.set_window(1, 1, &patch);
        assert_eq!(t.window(1, 1, 2, 2), patch);
        assert_eq!(t[(0, 0, 0)], 0.0);
    }

    #[test]
    fn concat_channels_orders_parts() {
        let a = Tensor3::from_fn(2, 2, 2, |c, i, j| (c * 4 + i * 2 + j) as f64);
        let b = Tensor3::from_fn(1, 2, 2, |_, i, j| 100.0 + (i * 2 + j) as f64);
        let cat = Tensor3::concat_channels(&[&a, &b]);
        assert_eq!(cat.shape(), (3, 2, 2));
        assert_eq!(cat.channel_grid(0), a.channel_grid(0));
        assert_eq!(cat.channel_grid(1), a.channel_grid(1));
        assert_eq!(cat.channel_grid(2), b.channel_grid(0));
    }

    #[test]
    #[should_panic(expected = "spatial mismatch")]
    fn concat_channels_rejects_shape_mismatch() {
        let a = Tensor3::zeros(1, 2, 2);
        let b = Tensor3::zeros(1, 3, 2);
        let _ = Tensor3::concat_channels(&[&a, &b]);
    }

    #[test]
    fn indexing_layout() {
        let t = Tensor3::from_fn(2, 2, 2, |c, i, j| (c * 4 + i * 2 + j) as f64);
        assert_eq!(t.as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(t[(1, 0, 1)], 5.0);
    }

    #[test]
    #[should_panic(expected = "inconsistent channel shapes")]
    fn from_channels_rejects_mixed_shapes() {
        let _ = Tensor3::from_channels(&[Grid2::zeros(2, 2), Grid2::zeros(3, 2)]);
    }
}
