//! # pde-tensor
//!
//! Dense numeric containers and the convolution arithmetic underpinning the
//! rest of the workspace.
//!
//! The crate deliberately offers a small set of *fixed-rank* types instead of
//! a fully general N-dimensional array:
//!
//! * [`Matrix`] — row-major 2-D matrix with a blocked GEMM kernel,
//! * [`Grid2`] — a scalar field on a 2-D structured grid (solver state),
//! * [`Tensor3`] — one sample in `(C, H, W)` layout (a multi-channel snapshot),
//! * [`Tensor4`] — a batch in `(N, C, H, W)` layout (the NN workhorse).
//!
//! Everything is `f64`, contiguous, and row-major; hot kernels are written
//! against flat slices so the optimizer can vectorize them. Shape mismatches
//! panic — in a numeric kernel a silent broadcast is a bug, not a feature.
//!
//! Convolution support lives in [`conv`] (direct and im2col-based forward,
//! plus the input/weight backward passes used by `pde-nn`), padding/cropping
//! in [`pad`].
//!
//! The kernel layer is two-level: a runtime-selected [`KernelPath`]
//! (explicit AVX-512 / AVX2+FMA intrinsics or the portable scalar tile —
//! `PDEML_KERNEL` selects, see [`gemm`]) times an intra-rank thread budget
//! ([`pool`], `PDEML_THREADS_PER_RANK`). All combinations produce
//! bit-identical results; only throughput changes.

pub mod conv;
pub mod gemm;
pub mod grid;
pub mod im2col;
mod live;
pub mod matrix;
pub mod pad;
pub mod perf;
pub mod pool;
mod simd;
pub mod stats;
pub mod tensor3;
pub mod tensor4;

pub use conv::{conv2d, conv2d_backward_input, conv2d_backward_weight, conv2d_im2col, Conv2dSpec};
pub use gemm::{
    force_kernel_path, gemm, gemm_batch, gemm_nt, gemm_nt_batch, gemm_tn, gemm_tn_batch,
    kernel_path, KernelPath,
};
pub use grid::Grid2;
pub use matrix::Matrix;
pub use pad::PadMode;
pub use perf::PerfCounters;
pub use tensor3::Tensor3;
pub use tensor4::Tensor4;

/// Absolute-or-relative closeness test used across the workspace's tests.
///
/// Returns `true` when `|a - b| <= atol + rtol * max(|a|, |b|)`.
#[inline]
pub fn approx_eq(a: f64, b: f64, atol: f64, rtol: f64) -> bool {
    (a - b).abs() <= atol + rtol * a.abs().max(b.abs())
}

/// Asserts elementwise closeness of two slices with a context label.
///
/// Panics with the first offending index, the values and the tolerance.
pub fn assert_slice_close(a: &[f64], b: &[f64], atol: f64, rtol: f64, what: &str) {
    assert_eq!(
        a.len(),
        b.len(),
        "{what}: length mismatch {} vs {}",
        a.len(),
        b.len()
    );
    for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
        assert!(
            approx_eq(x, y, atol, rtol),
            "{what}: element {i} differs: {x} vs {y} (atol={atol}, rtol={rtol})"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basics() {
        assert!(approx_eq(1.0, 1.0, 0.0, 0.0));
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9, 0.0));
        assert!(!approx_eq(1.0, 1.1, 1e-3, 1e-3));
        assert!(approx_eq(1e9, 1e9 * (1.0 + 1e-10), 0.0, 1e-9));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn slice_close_rejects_length_mismatch() {
        assert_slice_close(&[1.0], &[1.0, 2.0], 1e-9, 0.0, "t");
    }

    #[test]
    #[should_panic(expected = "element 1 differs")]
    fn slice_close_reports_index() {
        assert_slice_close(&[1.0, 2.0], &[1.0, 2.5], 1e-9, 0.0, "t");
    }
}
