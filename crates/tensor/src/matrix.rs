//! Row-major 2-D matrix.
//!
//! [`Matrix`] is the flat container behind the GEMM-based convolution path
//! ([`crate::im2col`] lowers a convolution to one `gemm` call per sample) and
//! is also handy for small dense linear algebra in tests.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub};

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from an existing row-major buffer.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: buffer length mismatch"
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// The identity matrix of size `n × n`.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix, returning the flat buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow one row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow one row as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns the transposed matrix (allocates).
    pub fn transposed(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Fills the matrix with a constant.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    /// If `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        self.data
            .chunks_exact(self.cols)
            .map(|row| row.iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols, "Matrix index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols, "Matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "Matrix add: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "Matrix sub: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "Matrix add_assign: shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    /// Full matrix product via the blocked GEMM kernel.
    fn mul(self, rhs: &Matrix) -> Matrix {
        crate::gemm::matmul(self, rhs)
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, s: f64) -> Matrix {
        let data = self.data.iter().map(|a| a * s).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_indexing() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        m[(1, 2)] = 5.0;
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn from_fn_layout_is_row_major() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_fn(3, 4, |r, c| (r * 7 + c * 3) as f64);
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn identity_matvec() {
        let id = Matrix::identity(4);
        let x = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(id.matvec(&x), x);
    }

    #[test]
    fn add_sub_inverse() {
        let a = Matrix::from_fn(2, 2, |r, c| (r + c) as f64);
        let b = Matrix::from_fn(2, 2, |r, c| (r * c) as f64 + 1.0);
        let s = &(&a + &b) - &b;
        for (x, y) in s.as_slice().iter().zip(a.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn frobenius_norm_simple() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "buffer length mismatch")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_rejects_shape_mismatch() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        let _ = &a + &b;
    }
}
