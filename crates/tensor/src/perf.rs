//! Thread-local performance counters for the dense-kernel hot path, plus a
//! heap-allocation probe.
//!
//! Training in this workspace is one OS thread per rank
//! ([`pde-commsim`]'s `World`), so thread-local counters give exact
//! *per-rank* attribution with no synchronization on the hot path. The
//! kernels in [`crate::gemm`] record FLOPs, call counts and packing traffic
//! here; the global allocator is wrapped by [`CountingAlloc`] so the
//! training loop can *prove* it performs zero steady-state allocations.
//!
//! Typical use:
//!
//! ```
//! use pde_tensor::perf;
//! let before = perf::snapshot();
//! // ... run kernels ...
//! let spent = perf::snapshot().since(&before);
//! println!("{} GEMM calls, {} FLOPs", spent.gemm_calls, spent.flops);
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static FLOPS: Cell<u64> = const { Cell::new(0) };
    static GEMM_CALLS: Cell<u64> = const { Cell::new(0) };
    static BYTES_PACKED: Cell<u64> = const { Cell::new(0) };
    static KERNEL_NS: Cell<u64> = const { Cell::new(0) };
    static SIMD_CALLS: Cell<u64> = const { Cell::new(0) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Records one GEMM driver invocation: its FLOP count, packed-panel
/// traffic, wall-clock nanoseconds inside the driver, and whether an
/// explicit-SIMD kernel path ran.
#[inline]
pub(crate) fn record_gemm(flops: u64, bytes_packed: u64, ns: u64, simd: bool) {
    FLOPS.with(|c| c.set(c.get() + flops));
    GEMM_CALLS.with(|c| c.set(c.get() + 1));
    BYTES_PACKED.with(|c| c.set(c.get() + bytes_packed));
    KERNEL_NS.with(|c| c.set(c.get() + ns));
    if simd {
        SIMD_CALLS.with(|c| c.set(c.get() + 1));
    }
    crate::live::record_kernel(flops, ns);
    // One instant per driver call; when no trace session is active this is
    // a single thread-local read (see `pde_trace::instant`).
    pde_trace::instant(
        pde_trace::Category::Kernel,
        pde_trace::names::GEMM,
        flops,
        bytes_packed,
    );
}

/// A point-in-time (or difference of) reading of this thread's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PerfCounters {
    /// Floating-point operations issued by the GEMM kernels (2·m·k·n each).
    pub flops: u64,
    /// Number of GEMM driver calls (a batched call counts once).
    pub gemm_calls: u64,
    /// Bytes copied into packed panels by the GEMM drivers.
    pub bytes_packed: u64,
    /// Wall-clock nanoseconds spent inside the GEMM driver (packing +
    /// micro-kernels, including time on pool worker threads it fanned out
    /// to — the driver blocks until every chunk completes).
    pub kernel_ns: u64,
    /// GEMM driver calls that ran an explicit-SIMD kernel path.
    pub simd_calls: u64,
    /// Heap allocations observed on this thread (alloc + realloc +
    /// alloc_zeroed), counted by [`CountingAlloc`].
    pub allocs: u64,
}

impl PerfCounters {
    /// Counter increments since an `earlier` snapshot on the same thread.
    pub fn since(&self, earlier: &PerfCounters) -> PerfCounters {
        PerfCounters {
            flops: self.flops - earlier.flops,
            gemm_calls: self.gemm_calls - earlier.gemm_calls,
            bytes_packed: self.bytes_packed - earlier.bytes_packed,
            kernel_ns: self.kernel_ns - earlier.kernel_ns,
            simd_calls: self.simd_calls - earlier.simd_calls,
            allocs: self.allocs - earlier.allocs,
        }
    }

    /// Sustained GFLOP/s given a wall-clock duration in seconds.
    pub fn gflops(&self, seconds: f64) -> f64 {
        if seconds > 0.0 {
            self.flops as f64 / seconds / 1e9
        } else {
            0.0
        }
    }

    /// GFLOP/s over the nanoseconds actually spent inside the GEMM driver
    /// (excludes everything the caller did between kernel calls).
    pub fn kernel_gflops(&self) -> f64 {
        if self.kernel_ns > 0 {
            self.flops as f64 / self.kernel_ns as f64
        } else {
            0.0
        }
    }
}

/// Reads this thread's counters.
pub fn snapshot() -> PerfCounters {
    PerfCounters {
        flops: FLOPS.with(Cell::get),
        gemm_calls: GEMM_CALLS.with(Cell::get),
        bytes_packed: BYTES_PACKED.with(Cell::get),
        kernel_ns: KERNEL_NS.with(Cell::get),
        simd_calls: SIMD_CALLS.with(Cell::get),
        allocs: ALLOCS.with(Cell::get),
    }
}

/// Resets this thread's counters to zero.
pub fn reset() {
    FLOPS.with(|c| c.set(0));
    GEMM_CALLS.with(|c| c.set(0));
    BYTES_PACKED.with(|c| c.set(0));
    KERNEL_NS.with(|c| c.set(0));
    SIMD_CALLS.with(|c| c.set(0));
    ALLOCS.with(|c| c.set(0));
}

/// A [`System`]-backed global allocator that counts allocations per thread.
///
/// Installed as the workspace's `#[global_allocator]` by this crate, so every
/// binary that links `pde-tensor` gets allocation accounting for free. The
/// probe is a single thread-local counter increment per allocation — cheap
/// enough to leave on unconditionally.
pub struct CountingAlloc;

#[inline]
fn note_alloc() {
    // `try_with` guards the TLS-teardown window at thread exit; allocations
    // there are unobservable to the counters, which is fine.
    let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
}

// SAFETY: defers all allocation to `System`; the counter increment has no
// effect on allocator behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_alloc();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL_ALLOC: CountingAlloc = CountingAlloc;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_probe_counts() {
        let before = snapshot();
        let v: Vec<u64> = (0..1024).collect();
        std::hint::black_box(&v);
        let after = snapshot();
        assert!(
            after.allocs > before.allocs,
            "Vec allocation should be counted"
        );
    }

    #[test]
    fn since_subtracts_fields() {
        let a = PerfCounters {
            flops: 10,
            gemm_calls: 2,
            bytes_packed: 100,
            kernel_ns: 50,
            simd_calls: 1,
            allocs: 5,
        };
        let b = PerfCounters {
            flops: 25,
            gemm_calls: 3,
            bytes_packed: 140,
            kernel_ns: 80,
            simd_calls: 3,
            allocs: 9,
        };
        let d = b.since(&a);
        assert_eq!(
            d,
            PerfCounters {
                flops: 15,
                gemm_calls: 1,
                bytes_packed: 40,
                kernel_ns: 30,
                simd_calls: 2,
                allocs: 4
            }
        );
    }

    #[test]
    fn kernel_gflops_uses_driver_time() {
        let c = PerfCounters {
            flops: 3_000_000_000,
            kernel_ns: 1_000_000_000,
            ..Default::default()
        };
        assert!((c.kernel_gflops() - 3.0).abs() < 1e-12);
        assert_eq!(PerfCounters::default().kernel_gflops(), 0.0);
    }

    #[test]
    fn gflops_handles_zero_time() {
        let c = PerfCounters {
            flops: 1_000_000_000,
            ..Default::default()
        };
        assert_eq!(c.gflops(0.0), 0.0);
        assert!((c.gflops(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn counters_are_thread_local() {
        reset();
        record_gemm(100, 8, 10, true);
        let main_thread = snapshot();
        let other = std::thread::spawn(|| snapshot().flops).join().unwrap();
        assert_eq!(main_thread.flops, 100);
        assert_eq!(other, 0, "a fresh thread starts with zeroed counters");
    }
}
