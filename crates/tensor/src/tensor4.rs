//! Batched tensors in `(N, C, H, W)` layout — the neural-network workhorse.

use crate::Tensor3;
use std::ops::{Index, IndexMut};

/// A `(N, C, H, W)` tensor: a batch of `n` samples, each with `c` channels of
/// an `h × w` grid. Contiguous, row-major within each plane.
#[derive(Clone, PartialEq, Debug)]
pub struct Tensor4 {
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    data: Vec<f64>,
}

impl Tensor4 {
    /// All-zero tensor.
    pub fn zeros(n: usize, c: usize, h: usize, w: usize) -> Self {
        Self {
            n,
            c,
            h,
            w,
            data: vec![0.0; n * c * h * w],
        }
    }

    /// Tensor with every element set to `v`.
    pub fn full(n: usize, c: usize, h: usize, w: usize, v: f64) -> Self {
        Self {
            n,
            c,
            h,
            w,
            data: vec![v; n * c * h * w],
        }
    }

    /// Tensor from an `(N, C, H, W)`-ordered buffer.
    ///
    /// # Panics
    /// If the buffer length disagrees with the shape.
    pub fn from_vec(n: usize, c: usize, h: usize, w: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            n * c * h * w,
            "Tensor4::from_vec: buffer length mismatch"
        );
        Self { n, c, h, w, data }
    }

    /// Tensor built by evaluating `f(n, c, i, j)` everywhere.
    pub fn from_fn(
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        mut f: impl FnMut(usize, usize, usize, usize) -> f64,
    ) -> Self {
        let mut data = Vec::with_capacity(n * c * h * w);
        for s in 0..n {
            for ch in 0..c {
                for i in 0..h {
                    for j in 0..w {
                        data.push(f(s, ch, i, j));
                    }
                }
            }
        }
        Self { n, c, h, w, data }
    }

    /// Stacks samples into a batch.
    ///
    /// # Panics
    /// If samples disagree in shape or `samples` is empty.
    pub fn stack(samples: &[Tensor3]) -> Self {
        assert!(!samples.is_empty(), "Tensor4::stack: empty batch");
        let (c, h, w) = samples[0].shape();
        let mut data = Vec::with_capacity(samples.len() * c * h * w);
        for s in samples {
            assert_eq!(
                s.shape(),
                (c, h, w),
                "Tensor4::stack: inconsistent sample shapes"
            );
            data.extend_from_slice(s.as_slice());
        }
        Self {
            n: samples.len(),
            c,
            h,
            w,
            data,
        }
    }

    /// A batch of one sample.
    pub fn from_sample(s: &Tensor3) -> Self {
        Self::stack(std::slice::from_ref(s))
    }

    /// Batch size.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Channel count.
    #[inline]
    pub fn c(&self) -> usize {
        self.c
    }

    /// Grid height.
    #[inline]
    pub fn h(&self) -> usize {
        self.h
    }

    /// Grid width.
    #[inline]
    pub fn w(&self) -> usize {
        self.w
    }

    /// `(n, c, h, w)` quadruple.
    #[inline]
    pub fn shape(&self) -> (usize, usize, usize, usize) {
        (self.n, self.c, self.h, self.w)
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat `(N, C, H, W)`-ordered view.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable view.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the tensor, returning the flat buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrows one sample as a flat `c*h*w` slice.
    #[inline]
    pub fn sample(&self, s: usize) -> &[f64] {
        debug_assert!(s < self.n);
        let sz = self.c * self.h * self.w;
        &self.data[s * sz..(s + 1) * sz]
    }

    /// Mutably borrows one sample.
    #[inline]
    pub fn sample_mut(&mut self, s: usize) -> &mut [f64] {
        debug_assert!(s < self.n);
        let sz = self.c * self.h * self.w;
        &mut self.data[s * sz..(s + 1) * sz]
    }

    /// Copies one sample out as a [`Tensor3`].
    pub fn sample_tensor(&self, s: usize) -> Tensor3 {
        Tensor3::from_vec(self.c, self.h, self.w, self.sample(s).to_vec())
    }

    /// Builds a new batch from the samples selected by `idx` (repeats allowed).
    ///
    /// # Panics
    /// If any index is out of range or `idx` is empty.
    pub fn select(&self, idx: &[usize]) -> Tensor4 {
        assert!(!idx.is_empty(), "Tensor4::select: empty index set");
        let sz = self.c * self.h * self.w;
        let mut data = Vec::with_capacity(idx.len() * sz);
        for &s in idx {
            assert!(
                s < self.n,
                "Tensor4::select: index {s} out of range (n={})",
                self.n
            );
            data.extend_from_slice(self.sample(s));
        }
        Tensor4 {
            n: idx.len(),
            c: self.c,
            h: self.h,
            w: self.w,
            data,
        }
    }

    /// Applies `f` to every value in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Returns a new tensor with `f` applied elementwise.
    pub fn map(&self, f: impl FnMut(f64) -> f64) -> Tensor4 {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// Elementwise `self += alpha * other`.
    ///
    /// # Panics
    /// If shapes differ.
    pub fn axpy(&mut self, alpha: f64, other: &Tensor4) {
        assert_eq!(self.shape(), other.shape(), "Tensor4::axpy: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Scales every element by `s`.
    pub fn scale(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements (NaN for an empty tensor).
    pub fn mean(&self) -> f64 {
        self.sum() / self.data.len() as f64
    }

    /// Maximum absolute value.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// Squared L2 norm.
    pub fn norm_sq(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Reshapes the tensor in place, reusing the existing buffer.
    ///
    /// Element values after a resize are unspecified (a mix of old data and
    /// zeros) — callers are expected to overwrite them. The backing
    /// allocation only grows: shrinking and re-growing within a previously
    /// reached size never touches the heap, which is what keeps the training
    /// hot path allocation-free across ragged final mini-batches.
    pub fn resize(&mut self, n: usize, c: usize, h: usize, w: usize) {
        self.n = n;
        self.c = c;
        self.h = h;
        self.w = w;
        self.data.resize(n * c * h * w, 0.0);
    }

    /// Makes `self` an exact copy of `other`, reusing the existing buffer
    /// (allocation-free once the buffer has grown to `other`'s size).
    pub fn copy_from(&mut self, other: &Tensor4) {
        let (n, c, h, w) = other.shape();
        self.resize(n, c, h, w);
        self.data.copy_from_slice(&other.data);
    }
}

impl Index<(usize, usize, usize, usize)> for Tensor4 {
    type Output = f64;
    #[inline]
    fn index(&self, (s, c, i, j): (usize, usize, usize, usize)) -> &f64 {
        debug_assert!(
            s < self.n && c < self.c && i < self.h && j < self.w,
            "Tensor4 index out of bounds"
        );
        &self.data[((s * self.c + c) * self.h + i) * self.w + j]
    }
}

impl IndexMut<(usize, usize, usize, usize)> for Tensor4 {
    #[inline]
    fn index_mut(&mut self, (s, c, i, j): (usize, usize, usize, usize)) -> &mut f64 {
        debug_assert!(
            s < self.n && c < self.c && i < self.h && j < self.w,
            "Tensor4 index out of bounds"
        );
        &mut self.data[((s * self.c + c) * self.h + i) * self.w + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_and_sample_round_trip() {
        let a = Tensor3::from_fn(2, 3, 3, |c, i, j| (c * 9 + i * 3 + j) as f64);
        let b = Tensor3::from_fn(2, 3, 3, |c, i, j| -((c * 9 + i * 3 + j) as f64));
        let t = Tensor4::stack(&[a.clone(), b.clone()]);
        assert_eq!(t.shape(), (2, 2, 3, 3));
        assert_eq!(t.sample_tensor(0), a);
        assert_eq!(t.sample_tensor(1), b);
    }

    #[test]
    fn select_repeats_and_reorders() {
        let t = Tensor4::from_fn(3, 1, 1, 1, |s, _, _, _| s as f64);
        let sel = t.select(&[2, 0, 2]);
        assert_eq!(sel.as_slice(), &[2.0, 0.0, 2.0]);
    }

    #[test]
    fn indexing_layout() {
        let t = Tensor4::from_fn(2, 2, 1, 2, |s, c, _i, j| (s * 4 + c * 2 + j) as f64);
        assert_eq!(t.as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(t[(1, 1, 0, 1)], 7.0);
    }

    #[test]
    fn axpy_scale_norms() {
        let mut a = Tensor4::full(1, 1, 2, 2, 1.0);
        let b = Tensor4::full(1, 1, 2, 2, 3.0);
        a.axpy(2.0, &b);
        assert_eq!(a.sum(), 28.0);
        a.scale(0.5);
        assert_eq!(a.mean(), 3.5);
        assert_eq!(a.max_abs(), 3.5);
        assert!((a.norm_sq() - 4.0 * 3.5 * 3.5).abs() < 1e-12);
    }

    #[test]
    fn resize_and_copy_from_reuse_capacity() {
        let mut t = Tensor4::from_fn(2, 3, 4, 4, |s, c, i, j| (s + c + i + j) as f64);
        let cap = t.data.capacity();
        t.resize(1, 3, 4, 4);
        assert_eq!(t.shape(), (1, 3, 4, 4));
        assert_eq!(t.len(), 48);
        t.resize(2, 3, 4, 4);
        assert_eq!(
            t.data.capacity(),
            cap,
            "regrowing within capacity must not reallocate"
        );

        let src = Tensor4::from_fn(1, 2, 2, 2, |_, c, i, j| (c * 4 + i * 2 + j) as f64);
        t.copy_from(&src);
        assert_eq!(t.shape(), src.shape());
        assert_eq!(t.as_slice(), src.as_slice());
        assert_eq!(t.data.capacity(), cap);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn select_rejects_bad_index() {
        let t = Tensor4::zeros(2, 1, 1, 1);
        let _ = t.select(&[5]);
    }

    #[test]
    #[should_panic(expected = "inconsistent sample shapes")]
    fn stack_rejects_mixed_shapes() {
        let _ = Tensor4::stack(&[Tensor3::zeros(1, 2, 2), Tensor3::zeros(1, 2, 3)]);
    }
}
