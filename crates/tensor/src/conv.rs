//! 2-D cross-correlation ("convolution" in deep-learning parlance):
//! forward, input-gradient and weight-gradient kernels.
//!
//! Two forward implementations are provided: a direct seven-loop kernel
//! (trivially auditable, used as the test oracle) and the im2col+GEMM
//! lowering (the fast path used by `pde-nn`). Both share [`Conv2dSpec`].

use crate::gemm::{gemm_batch, gemm_nt_batch, gemm_tn_batch};
use crate::im2col::{col2im, im2col, ConvGeom};
use crate::pool::{self, SendPtr};
use crate::Tensor4;

/// Static description of a convolution layer's arithmetic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Input channels.
    pub in_c: usize,
    /// Output channels.
    pub out_c: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride in both directions.
    pub stride: usize,
    /// Symmetric zero padding on every side.
    pub pad: usize,
}

impl Conv2dSpec {
    /// Square-kernel, stride-1 spec.
    pub fn square(in_c: usize, out_c: usize, k: usize, pad: usize) -> Self {
        Self {
            in_c,
            out_c,
            kh: k,
            kw: k,
            stride: 1,
            pad,
        }
    }

    /// "Same" convolution: output spatial dims equal input dims (requires an
    /// odd kernel and stride 1).
    ///
    /// # Panics
    /// If the kernel is even-sized.
    pub fn same(in_c: usize, out_c: usize, k: usize) -> Self {
        assert!(k % 2 == 1, "Conv2dSpec::same needs an odd kernel, got {k}");
        Self::square(in_c, out_c, k, k / 2)
    }

    /// Geometry for a given input spatial size.
    pub fn geom(&self, h: usize, w: usize) -> ConvGeom {
        ConvGeom {
            c: self.in_c,
            h,
            w,
            kh: self.kh,
            kw: self.kw,
            stride: self.stride,
            pad: self.pad,
        }
    }

    /// Output spatial dims for a given input spatial size.
    pub fn out_dims(&self, h: usize, w: usize) -> (usize, usize) {
        let g = self.geom(h, w);
        (g.out_h(), g.out_w())
    }

    /// Number of learnable weights (`out_c * in_c * kh * kw`), excluding bias.
    pub fn weight_count(&self) -> usize {
        self.out_c * self.in_c * self.kh * self.kw
    }

    /// Expected weight-tensor shape `(out_c, in_c, kh, kw)`.
    pub fn weight_shape(&self) -> (usize, usize, usize, usize) {
        (self.out_c, self.in_c, self.kh, self.kw)
    }

    fn check_weights(&self, weight: &Tensor4) {
        assert_eq!(
            weight.shape(),
            self.weight_shape(),
            "conv2d: weight shape {:?} does not match spec {:?}",
            weight.shape(),
            self
        );
    }

    fn check_input(&self, input: &Tensor4) {
        assert_eq!(
            input.c(),
            self.in_c,
            "conv2d: input has {} channels, spec expects {}",
            input.c(),
            self.in_c
        );
    }
}

/// Direct (loop-nest) forward cross-correlation. `bias` is one value per
/// output channel or empty for no bias.
///
/// The reference implementation: slow but obviously correct.
pub fn conv2d(input: &Tensor4, weight: &Tensor4, bias: &[f64], spec: &Conv2dSpec) -> Tensor4 {
    spec.check_weights(weight);
    spec.check_input(input);
    assert!(
        bias.is_empty() || bias.len() == spec.out_c,
        "conv2d: bias length"
    );
    let (n, _, h, w) = input.shape();
    let g = spec.geom(h, w);
    g.validate();
    let (oh, ow) = (g.out_h(), g.out_w());
    let mut out = Tensor4::zeros(n, spec.out_c, oh, ow);

    for s in 0..n {
        let x = input.sample(s);
        let y = out.sample_mut(s);
        for oc in 0..spec.out_c {
            let b = if bias.is_empty() { 0.0 } else { bias[oc] };
            let y_plane = &mut y[oc * oh * ow..(oc + 1) * oh * ow];
            y_plane.fill(b);
            for ic in 0..spec.in_c {
                let x_plane = &x[ic * h * w..(ic + 1) * h * w];
                for ki in 0..spec.kh {
                    for kj in 0..spec.kw {
                        let wv = weight[(oc, ic, ki, kj)];
                        for oi in 0..oh {
                            let ii = (oi * spec.stride + ki) as isize - spec.pad as isize;
                            if ii < 0 || ii >= h as isize {
                                continue;
                            }
                            let x_row = &x_plane[ii as usize * w..(ii as usize + 1) * w];
                            let y_row = &mut y_plane[oi * ow..(oi + 1) * ow];
                            for (oj, yv) in y_row.iter_mut().enumerate() {
                                let jj = (oj * spec.stride + kj) as isize - spec.pad as isize;
                                if jj >= 0 && jj < w as isize {
                                    *yv += wv * x_row[jj as usize];
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Scratch buffers reused across im2col convolution calls to avoid
/// per-sample allocation in the training loop.
#[derive(Default, Clone)]
pub struct ConvScratch {
    cols: Vec<f64>,
}

impl ConvScratch {
    /// New empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// The batch-wide column buffer: `samples` consecutive per-sample column
    /// matrices. Grows monotonically, so a buffer that has seen the largest
    /// layer × batch combination never reallocates again.
    fn cols_for_batch(&mut self, g: &ConvGeom, samples: usize) -> &mut [f64] {
        let need = samples * g.col_rows() * g.col_cols();
        if self.cols.len() < need {
            self.cols.resize(need, 0.0);
        }
        &mut self.cols[..need]
    }
}

/// im2col + GEMM forward pass — the fast path. Identical results to
/// [`conv2d`] up to floating-point association order.
pub fn conv2d_im2col(
    input: &Tensor4,
    weight: &Tensor4,
    bias: &[f64],
    spec: &Conv2dSpec,
    scratch: &mut ConvScratch,
) -> Tensor4 {
    let mut out = Tensor4::zeros(0, 0, 0, 0);
    conv2d_im2col_into(input, weight, bias, spec, scratch, &mut out);
    out
}

/// [`conv2d_im2col`] writing into a caller-owned output tensor (resized in
/// place), with the whole mini-batch lowered at once: every sample's columns
/// land in one batch-wide buffer and a single batched GEMM computes all
/// samples, sharing one packed copy of the weight matrix.
pub fn conv2d_im2col_into(
    input: &Tensor4,
    weight: &Tensor4,
    bias: &[f64],
    spec: &Conv2dSpec,
    scratch: &mut ConvScratch,
    out: &mut Tensor4,
) {
    spec.check_weights(weight);
    spec.check_input(input);
    assert!(
        bias.is_empty() || bias.len() == spec.out_c,
        "conv2d: bias length"
    );
    let (n, _, h, w) = input.shape();
    let g = spec.geom(h, w);
    g.validate();
    let (oh, ow) = (g.out_h(), g.out_w());
    let (rows, n_cols) = (g.col_rows(), g.col_cols());
    out.resize(n, spec.out_c, oh, ow);

    let cols = scratch.cols_for_batch(&g, n);
    im2col_batch(input, &g, cols, rows * n_cols);
    let y = out.as_mut_slice();
    if bias.is_empty() {
        y.fill(0.0);
    } else {
        for (oc, chunk) in y.chunks_exact_mut(n_cols).enumerate() {
            chunk.fill(bias[oc % spec.out_c]);
        }
    }
    // Per sample: (out_c × rows) · (rows × n_cols) += into (out_c × n_cols).
    gemm_batch(n, spec.out_c, rows, n_cols, weight.as_slice(), cols, y);
}

/// Gradient of the loss w.r.t. the convolution *input*.
///
/// `grad_out` has the forward-output shape; the result has the forward-input
/// shape `(n, in_c, h, w)` (which must be supplied because stride/padding
/// make the inverse ambiguous).
pub fn conv2d_backward_input(
    grad_out: &Tensor4,
    weight: &Tensor4,
    spec: &Conv2dSpec,
    in_h: usize,
    in_w: usize,
    scratch: &mut ConvScratch,
) -> Tensor4 {
    let mut grad_in = Tensor4::zeros(0, 0, 0, 0);
    conv2d_backward_input_into(grad_out, weight, spec, in_h, in_w, scratch, &mut grad_in);
    grad_in
}

/// [`conv2d_backward_input`] writing into a caller-owned tensor (resized in
/// place), batch-fused: one batched GEMM produces every sample's column
/// gradients against a single packed copy of the weight matrix.
pub fn conv2d_backward_input_into(
    grad_out: &Tensor4,
    weight: &Tensor4,
    spec: &Conv2dSpec,
    in_h: usize,
    in_w: usize,
    scratch: &mut ConvScratch,
    grad_in: &mut Tensor4,
) {
    spec.check_weights(weight);
    let (n, oc, oh, ow) = grad_out.shape();
    assert_eq!(oc, spec.out_c, "backward_input: grad_out channels");
    let g = spec.geom(in_h, in_w);
    assert_eq!(
        (g.out_h(), g.out_w()),
        (oh, ow),
        "backward_input: geometry mismatch"
    );
    let (rows, n_cols) = (g.col_rows(), g.col_cols());
    grad_in.resize(n, spec.in_c, in_h, in_w);
    grad_in.as_mut_slice().fill(0.0);

    // cols_grad_s = Wᵀ (rows × out_c) · grad_out_s (out_c × n_cols).
    let cols = scratch.cols_for_batch(&g, n);
    cols.fill(0.0);
    gemm_tn_batch(
        n,
        rows,
        spec.out_c,
        n_cols,
        weight.as_slice(),
        grad_out.as_slice(),
        cols,
    );
    // Per-sample scatters write disjoint samples of grad_in — one pool
    // chunk each, same per-sample operation order as the sequential loop.
    let sample_len = spec.in_c * in_h * in_w;
    let stride_len = rows * n_cols;
    let cols: &[f64] = cols;
    let gi = SendPtr(grad_in.as_mut_slice().as_mut_ptr());
    pool::run(n, &|s| {
        // Whole-value rebind keeps the `Send + Sync` SendPtr in the capture.
        #[allow(clippy::redundant_locals)]
        let gi = gi;
        // SAFETY: chunk `s` owns sample `s`'s disjoint grad_in region.
        let out = unsafe { std::slice::from_raw_parts_mut(gi.0.add(s * sample_len), sample_len) };
        col2im(&cols[s * stride_len..][..stride_len], &g, out);
    });
}

/// Lowers every sample of `input` into its slot of the batch-wide column
/// buffer, one pool chunk per sample (disjoint `stride_len`-sized slots).
fn im2col_batch(input: &Tensor4, g: &ConvGeom, cols: &mut [f64], stride_len: usize) {
    let n = input.n();
    let dst = SendPtr(cols.as_mut_ptr());
    pool::run(n, &|s| {
        // Whole-value rebind keeps the `Send + Sync` SendPtr in the capture.
        #[allow(clippy::redundant_locals)]
        let dst = dst;
        // SAFETY: chunk `s` owns cols slot `s` exclusively.
        let slot = unsafe { std::slice::from_raw_parts_mut(dst.0.add(s * stride_len), stride_len) };
        im2col(input.sample(s), g, slot);
    });
}

/// Gradient of the loss w.r.t. the convolution *weights* and *bias*.
///
/// Accumulates into `grad_weight` (shape `(out_c, in_c, kh, kw)`) and
/// `grad_bias` (length `out_c`, or empty to skip), matching the convention
/// that gradients are summed over a mini-batch. Batch-fused: the whole
/// mini-batch is lowered once and a single batched GEMM accumulates every
/// sample's contribution into the shared gradient tile.
pub fn conv2d_backward_weight(
    input: &Tensor4,
    grad_out: &Tensor4,
    spec: &Conv2dSpec,
    grad_weight: &mut Tensor4,
    grad_bias: &mut [f64],
    scratch: &mut ConvScratch,
) {
    spec.check_input(input);
    assert_eq!(
        grad_weight.shape(),
        spec.weight_shape(),
        "backward_weight: grad shape"
    );
    assert!(
        grad_bias.is_empty() || grad_bias.len() == spec.out_c,
        "backward_weight: bias length"
    );
    let (n, _, h, w) = input.shape();
    let g = spec.geom(h, w);
    let (oh, ow) = (g.out_h(), g.out_w());
    assert_eq!(
        grad_out.shape(),
        (n, spec.out_c, oh, ow),
        "backward_weight: grad_out shape"
    );
    let (rows, n_cols) = (g.col_rows(), g.col_cols());

    let cols = scratch.cols_for_batch(&g, n);
    im2col_batch(input, &g, cols, rows * n_cols);
    // grad_W (out_c × rows) += Σ_s grad_out_s (out_c × n_cols) · cols_sᵀ.
    gemm_nt_batch(
        n,
        spec.out_c,
        n_cols,
        rows,
        grad_out.as_slice(),
        cols,
        grad_weight.as_mut_slice(),
    );
    if !grad_bias.is_empty() {
        for s in 0..n {
            let go = grad_out.sample(s);
            for oc in 0..spec.out_c {
                grad_bias[oc] += go[oc * n_cols..(oc + 1) * n_cols].iter().sum::<f64>();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(len: usize, seed: u64) -> Vec<f64> {
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 1000) as f64 / 500.0 - 1.0
            })
            .collect()
    }

    fn det_t4(n: usize, c: usize, h: usize, w: usize, seed: u64) -> Tensor4 {
        Tensor4::from_vec(n, c, h, w, det(n * c * h * w, seed))
    }

    #[test]
    fn identity_kernel_is_identity() {
        // 1×1 kernel with weight 1 reproduces the input.
        let spec = Conv2dSpec::square(1, 1, 1, 0);
        let x = det_t4(2, 1, 4, 4, 1);
        let w = Tensor4::full(1, 1, 1, 1, 1.0);
        let y = conv2d(&x, &w, &[], &spec);
        assert_eq!(y, x);
    }

    #[test]
    fn averaging_kernel_known_value() {
        let spec = Conv2dSpec::square(1, 1, 2, 0);
        let x = Tensor4::from_vec(1, 1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let w = Tensor4::full(1, 1, 2, 2, 0.25);
        let y = conv2d(&x, &w, &[], &spec);
        assert_eq!(y.shape(), (1, 1, 1, 1));
        assert!((y.as_slice()[0] - 2.5).abs() < 1e-12);
    }

    #[test]
    fn bias_added_per_output_channel() {
        let spec = Conv2dSpec::square(1, 2, 1, 0);
        let x = Tensor4::zeros(1, 1, 3, 3);
        let w = Tensor4::zeros(2, 1, 1, 1);
        let y = conv2d(&x, &w, &[1.5, -2.0], &spec);
        for j in 0..9 {
            assert_eq!(y.as_slice()[j], 1.5);
            assert_eq!(y.as_slice()[9 + j], -2.0);
        }
    }

    #[test]
    fn im2col_path_matches_direct() {
        let mut scratch = ConvScratch::new();
        for &(in_c, out_c, k, pad, stride, h, w) in &[
            (1usize, 1usize, 3usize, 1usize, 1usize, 5usize, 5usize),
            (4, 6, 5, 2, 1, 8, 8),
            (3, 2, 3, 0, 1, 6, 7),
            (2, 4, 3, 1, 2, 9, 9),
        ] {
            let spec = Conv2dSpec {
                in_c,
                out_c,
                kh: k,
                kw: k,
                stride,
                pad,
            };
            let x = det_t4(2, in_c, h, w, 10 + k as u64);
            let wt = det_t4(out_c, in_c, k, k, 20 + k as u64);
            let b = det(out_c, 30);
            let y1 = conv2d(&x, &wt, &b, &spec);
            let y2 = conv2d_im2col(&x, &wt, &b, &spec, &mut scratch);
            crate::assert_slice_close(
                y1.as_slice(),
                y2.as_slice(),
                1e-11,
                1e-11,
                "im2col vs direct",
            );
        }
    }

    #[test]
    fn same_spec_preserves_dims() {
        let spec = Conv2dSpec::same(4, 6, 5);
        assert_eq!(spec.out_dims(16, 24), (16, 24));
        assert_eq!(spec.weight_count(), 6 * 4 * 5 * 5);
    }

    /// Finite-difference check of the input gradient.
    #[test]
    fn backward_input_matches_finite_difference() {
        let spec = Conv2dSpec::square(2, 3, 3, 1);
        let (h, w) = (5, 4);
        let x = det_t4(1, 2, h, w, 77);
        let wt = det_t4(3, 2, 3, 3, 78);
        let mut scratch = ConvScratch::new();

        // Loss = 0.5 * ||y||², so dL/dy = y and dL/dx via backward_input.
        let y = conv2d(&x, &wt, &[], &spec);
        let gin = conv2d_backward_input(&y, &wt, &spec, h, w, &mut scratch);

        let eps = 1e-6;
        for k in (0..x.len()).step_by(7) {
            let mut xp = x.clone();
            xp.as_mut_slice()[k] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[k] -= eps;
            let lp = 0.5 * conv2d(&xp, &wt, &[], &spec).norm_sq();
            let lm = 0.5 * conv2d(&xm, &wt, &[], &spec).norm_sq();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - gin.as_slice()[k]).abs() < 1e-5 * (1.0 + fd.abs()),
                "input grad mismatch at {k}: fd={fd} analytic={}",
                gin.as_slice()[k]
            );
        }
    }

    /// Finite-difference check of the weight and bias gradients.
    #[test]
    fn backward_weight_matches_finite_difference() {
        let spec = Conv2dSpec::square(2, 2, 3, 1);
        let (h, w) = (4, 4);
        let x = det_t4(2, 2, h, w, 99);
        let wt = det_t4(2, 2, 3, 3, 100);
        let b = det(2, 101);
        let mut scratch = ConvScratch::new();

        let y = conv2d(&x, &wt, &b, &spec);
        let mut gw = Tensor4::zeros(2, 2, 3, 3);
        let mut gb = vec![0.0; 2];
        conv2d_backward_weight(&x, &y, &spec, &mut gw, &mut gb, &mut scratch);

        let eps = 1e-6;
        for k in 0..wt.len() {
            let mut wp = wt.clone();
            wp.as_mut_slice()[k] += eps;
            let mut wm = wt.clone();
            wm.as_mut_slice()[k] -= eps;
            let lp = 0.5 * conv2d(&x, &wp, &b, &spec).norm_sq();
            let lm = 0.5 * conv2d(&x, &wm, &b, &spec).norm_sq();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - gw.as_slice()[k]).abs() < 1e-4 * (1.0 + fd.abs()),
                "weight grad mismatch at {k}: fd={fd} analytic={}",
                gw.as_slice()[k]
            );
        }
        for oc in 0..2 {
            let mut bp = b.clone();
            bp[oc] += eps;
            let mut bm = b.clone();
            bm[oc] -= eps;
            let lp = 0.5 * conv2d(&x, &wt, &bp, &spec).norm_sq();
            let lm = 0.5 * conv2d(&x, &wt, &bm, &spec).norm_sq();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - gb[oc]).abs() < 1e-4 * (1.0 + fd.abs()),
                "bias grad mismatch at {oc}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "weight shape")]
    fn rejects_wrong_weight_shape() {
        let spec = Conv2dSpec::square(2, 3, 3, 1);
        let x = Tensor4::zeros(1, 2, 4, 4);
        let w = Tensor4::zeros(3, 2, 5, 5);
        let _ = conv2d(&x, &w, &[], &spec);
    }

    #[test]
    #[should_panic(expected = "needs an odd kernel")]
    fn same_rejects_even_kernel() {
        let _ = Conv2dSpec::same(1, 1, 4);
    }
}
