//! Dependency-free intra-rank worker pool for the dense kernels.
//!
//! The workspace's parallel runtime is one OS thread per rank
//! (`pde-commsim`); this pool adds a *second* level of parallelism inside a
//! rank without oversubscribing the machine: each rank thread owns a lazily
//! spawned pool of `budget − 1` workers and participates in every job
//! itself, so a budget of 1 (the default) spawns nothing and runs inline —
//! bit-for-bit the unthreaded code path.
//!
//! Jobs are expressed as `n_chunks` independent chunk indices; threads claim
//! chunks from a shared atomic cursor (cheap work stealing), so an uneven
//! chunk cost profile self-balances. The chunk → data mapping is fixed by
//! the caller, which is what keeps threaded kernels deterministic: every
//! output element is computed by exactly one chunk with the same operation
//! order no matter which thread runs it, so results are identical for every
//! budget (asserted by the tests below and `tests/kernel_paths.rs`).
//!
//! Steady-state [`run`] performs **zero heap allocations**: the job is
//! published as a raw wide pointer, chunk claiming is one `fetch_add`, and
//! the rendezvous is a `Mutex`/`Condvar` pair created at spawn time. A panic
//! inside a chunk is caught on the executing thread, the pool is flagged
//! *poisoned*, the job still runs to completion on the surviving threads
//! (never a hang), and [`run`] re-raises the failure as a panic on the
//! caller. A poisoned pool refuses further jobs.
//!
//! Budget resolution (see [`thread_budget`]): explicit
//! [`set_thread_budget`] > `PDEML_THREADS_PER_RANK` env var > 1. The
//! world-aware default (cores / ranks) is computed by [`resolve_budget`] and
//! installed on each rank thread by the training / serving drivers.

use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

thread_local! {
    /// Explicit per-thread budget (None = fall back to env / 1).
    static BUDGET: Cell<Option<usize>> = const { Cell::new(None) };
    /// This thread's lazily spawned pool.
    static POOL: RefCell<Option<Pool>> = const { RefCell::new(None) };
    /// True while this thread executes inside [`run`] — nested calls run
    /// inline instead of re-entering the pool.
    static IN_RUN: Cell<bool> = const { Cell::new(false) };
}

/// Cores visible to this process (1 if the query fails).
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// `PDEML_THREADS_PER_RANK`, parsed once per process.
///
/// # Panics
/// On a non-numeric or zero value — silently clamping a typo would hide a
/// misconfiguration.
fn env_budget() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        let raw = std::env::var("PDEML_THREADS_PER_RANK").ok()?;
        let n: usize = raw.parse().unwrap_or_else(|_| {
            panic!(
                "PDEML_THREADS_PER_RANK={raw:?} is not a thread count; \
                 set a positive integer (e.g. 1) or unset it"
            )
        });
        assert!(
            n >= 1,
            "PDEML_THREADS_PER_RANK=0 would disable the kernels; \
             set 1 for single-threaded or unset it"
        );
        Some(n)
    })
}

/// Sets this thread's kernel thread budget (total threads including the
/// caller; 1 = run everything inline). Overrides the environment.
///
/// # Panics
/// If `n` is 0.
pub fn set_thread_budget(n: usize) {
    assert!(n >= 1, "thread budget must be >= 1 (1 = inline)");
    BUDGET.with(|b| b.set(Some(n)));
    crate::live::set_threads_active(n);
}

/// The kernel thread budget in effect on this thread: the last
/// [`set_thread_budget`] value, else `PDEML_THREADS_PER_RANK`, else 1.
pub fn thread_budget() -> usize {
    BUDGET.with(Cell::get).or_else(env_budget).unwrap_or(1)
}

/// The budget a rank should install: an explicit configuration value wins,
/// then the `PDEML_THREADS_PER_RANK` env var, then the ISSUE-6 composition
/// rule `max(1, cores / ranks)` so a full world never oversubscribes the
/// machine.
pub fn resolve_budget(explicit: Option<usize>, ranks: usize) -> usize {
    explicit
        .or_else(env_budget)
        .unwrap_or_else(|| (available_cores() / ranks.max(1)).max(1))
}

/// Runs `f(chunk)` for every `chunk in 0..n_chunks`, spreading chunks over
/// this thread's pool. The caller participates; with a budget of 1 (or a
/// single chunk, or a nested call) everything runs inline on the caller.
///
/// Chunks must write disjoint data. Each chunk index is executed exactly
/// once; the chunk → thread assignment is unspecified, so determinism must
/// come from the chunk → data mapping (it does, for every caller in this
/// crate).
///
/// # Panics
/// If any chunk panics (after all threads finish the job), or if the pool
/// was poisoned by an earlier panic.
pub fn run(n_chunks: usize, f: &(dyn Fn(usize) + Sync)) {
    let budget = thread_budget();
    if budget <= 1 || n_chunks <= 1 || IN_RUN.with(Cell::get) {
        for i in 0..n_chunks {
            f(i);
        }
        return;
    }
    IN_RUN.with(|g| g.set(true));
    let result = catch_unwind(AssertUnwindSafe(|| {
        POOL.with(|p| {
            let mut p = p.borrow_mut();
            let want = budget - 1;
            if p.as_ref().map(|pl| pl.workers.len()) != Some(want) {
                *p = None; // join any old pool before resizing
                *p = Some(Pool::new(want));
            }
            p.as_mut().unwrap().run(n_chunks, f);
        });
    }));
    IN_RUN.with(|g| g.set(false));
    if let Err(e) = result {
        std::panic::resume_unwind(e);
    }
}

/// A raw `f64` base pointer made shareable with pool chunks. The wrapper
/// exists because chunk closures need `Sync` captures; it is only sound
/// when every chunk writes a disjoint region, which each call site
/// documents. Bind it whole inside the closure (`let p = ptr;`) so edition
/// 2021's disjoint capture doesn't capture the bare field.
#[derive(Clone, Copy)]
pub(crate) struct SendPtr(pub(crate) *mut f64);
// SAFETY: see above — disjoint-region discipline at every call site.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// Job published to the workers: a lifetime-erased wide pointer. Sound
/// because [`Pool::run`] does not return until every worker has finished
/// the epoch, so the pointee outlives every dereference.
#[derive(Clone, Copy)]
struct RawJob(*const (dyn Fn(usize) + Sync));
// SAFETY: the pointee is `Sync` and outlives the job (see above).
unsafe impl Send for RawJob {}

struct Slot {
    /// Bumped per job; workers use it to recognize fresh work.
    epoch: u64,
    job: Option<RawJob>,
    n_chunks: usize,
    /// Workers still inside the current epoch.
    active: usize,
    quit: bool,
}

struct Shared {
    slot: Mutex<Slot>,
    work_cv: Condvar,
    done_cv: Condvar,
    /// Next unclaimed chunk of the current job.
    next: AtomicUsize,
    /// Set when any chunk panicked; permanent.
    poisoned: AtomicBool,
}

struct Pool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    fn new(workers: usize) -> Pool {
        let shared = Arc::new(Shared {
            slot: Mutex::new(Slot {
                epoch: 0,
                job: None,
                n_chunks: 0,
                active: 0,
                quit: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            next: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pdeml-kernel-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn kernel pool worker")
            })
            .collect();
        Pool {
            shared,
            workers: handles,
        }
    }

    fn run(&mut self, n_chunks: usize, f: &(dyn Fn(usize) + Sync)) {
        let shared = &*self.shared;
        assert!(
            !shared.poisoned.load(Ordering::Acquire),
            "pde_tensor::pool: pool is poisoned by an earlier worker panic"
        );
        {
            let mut slot = shared.slot.lock().unwrap();
            shared.next.store(0, Ordering::Relaxed);
            slot.epoch += 1;
            // SAFETY: lifetime erasure only — `run` blocks until every worker
            // has left this epoch (the `active > 0` rendezvous below), so the
            // pointer never outlives the borrow it came from.
            let f_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
            slot.job = Some(RawJob(f_static as *const _));
            slot.n_chunks = n_chunks;
            slot.active = self.workers.len();
            shared.work_cv.notify_all();
        }
        // The caller is a full participant in the chunk race. A panicking
        // chunk must not unwind past this frame while workers still hold the
        // job pointer, so it is caught and re-raised after the rendezvous.
        claim_chunks(shared, n_chunks, f);
        let mut slot = shared.slot.lock().unwrap();
        while slot.active > 0 {
            slot = shared.done_cv.wait(slot).unwrap();
        }
        slot.job = None;
        drop(slot);
        assert!(
            !shared.poisoned.load(Ordering::Acquire),
            "pde_tensor::pool: a kernel chunk panicked; pool poisoned"
        );
    }
}

/// Claims and runs chunks until the cursor passes `n_chunks`. Panics are
/// absorbed into the poison flag so the epoch always completes.
fn claim_chunks(shared: &Shared, n_chunks: usize, f: &(dyn Fn(usize) + Sync)) {
    loop {
        let i = shared.next.fetch_add(1, Ordering::Relaxed);
        if i >= n_chunks {
            return;
        }
        if catch_unwind(AssertUnwindSafe(|| f(i))).is_err() {
            shared.poisoned.store(true, Ordering::Release);
        }
    }
}

fn worker_loop(shared: &Shared) {
    // Workers never nest pools of their own.
    BUDGET.with(|b| b.set(Some(1)));
    let mut seen = 0u64;
    loop {
        let (job, n_chunks) = {
            let mut slot = shared.slot.lock().unwrap();
            loop {
                if slot.quit {
                    return;
                }
                if slot.epoch != seen && slot.job.is_some() {
                    break;
                }
                slot = shared.work_cv.wait(slot).unwrap();
            }
            seen = slot.epoch;
            (slot.job.unwrap(), slot.n_chunks)
        };
        // SAFETY: `Pool::run` keeps the pointee alive until `active` drops
        // to zero, which happens strictly after this dereference.
        let f = unsafe { &*job.0 };
        claim_chunks(shared, n_chunks, f);
        let mut slot = shared.slot.lock().unwrap();
        slot.active -= 1;
        if slot.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock().unwrap();
            slot.quit = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Tests mutate the thread-local budget; each restores budget 1 so the
    /// surrounding test threads stay unthreaded.
    struct BudgetGuard;
    impl Drop for BudgetGuard {
        fn drop(&mut self) {
            set_thread_budget(1);
        }
    }

    #[test]
    fn every_chunk_runs_exactly_once() {
        let _g = BudgetGuard;
        for budget in [1, 2, 4] {
            set_thread_budget(budget);
            let hits: Vec<AtomicU64> = (0..37).map(|_| AtomicU64::new(0)).collect();
            run(hits.len(), &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "chunk {i} (budget {budget})");
            }
        }
    }

    #[test]
    fn chunk_to_data_mapping_is_deterministic_across_budgets() {
        let _g = BudgetGuard;
        // Each chunk owns slot i and writes a value derived from i alone;
        // any cross-thread interference or double execution would corrupt
        // the comparison against the inline (budget-1) reference.
        let compute = |out: &mut [f64]| {
            let ptr = SendPtr(out.as_mut_ptr());
            run(out.len(), &|i| {
                // Bind whole so closure capture keeps the Sync wrapper.
                let ptr = &ptr;
                let cell = unsafe { &mut *ptr.0.add(i) };
                let mut v = i as f64 + 1.0;
                for _ in 0..1000 {
                    v = v.mul_add(1.000_1, -0.5);
                }
                *cell = v;
            });
        };
        set_thread_budget(1);
        let mut seq = vec![0.0; 129];
        compute(&mut seq);
        for budget in [2, 3, 4] {
            set_thread_budget(budget);
            let mut par = vec![0.0; 129];
            compute(&mut par);
            assert!(
                seq.iter()
                    .zip(&par)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "budget {budget} diverged from inline execution"
            );
        }
    }

    #[test]
    fn worker_panic_poisons_instead_of_hanging() {
        let _g = BudgetGuard;
        let result = std::thread::spawn(|| {
            set_thread_budget(3);
            let first = catch_unwind(AssertUnwindSafe(|| {
                run(16, &|i| {
                    if i == 7 {
                        panic!("injected chunk failure");
                    }
                });
            }));
            assert!(first.is_err(), "panic in a chunk must reach the caller");
            // The pool is now permanently poisoned: the next job fails fast.
            let second = catch_unwind(AssertUnwindSafe(|| run(4, &|_| {})));
            let payload = second.expect_err("poisoned pool must reject jobs");
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic payload>");
            assert!(msg.contains("poisoned"), "unexpected message: {msg}");
        })
        .join();
        result.unwrap();
    }

    #[test]
    fn budget_one_runs_inline_without_spawning() {
        let _g = BudgetGuard;
        set_thread_budget(1);
        let caller = std::thread::current().id();
        run(8, &|_| {
            assert_eq!(std::thread::current().id(), caller);
        });
        POOL.with(|p| assert!(p.borrow().is_none(), "budget 1 must not spawn a pool"));
    }

    #[test]
    fn nested_run_executes_inline() {
        let _g = BudgetGuard;
        set_thread_budget(2);
        let outer_hits = AtomicU64::new(0);
        run(2, &|_| {
            // Nested call: must complete inline on whichever thread runs it.
            run(3, &|_| {
                outer_hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(outer_hits.load(Ordering::Relaxed), 6);
    }

    #[test]
    #[should_panic(expected = "budget must be >= 1")]
    fn zero_budget_rejected() {
        set_thread_budget(0);
    }

    #[test]
    fn resolve_budget_prefers_explicit_value() {
        assert_eq!(resolve_budget(Some(3), 4), 3);
        // Default rule: cores/ranks, floored at 1. With `ranks` larger than
        // any machine this always lands on the floor.
        assert_eq!(resolve_budget(None, 1 << 20), 1);
    }
}
