//! Scalar-vs-SIMD equivalence for the GEMM kernel layer.
//!
//! The contract (see `DESIGN.md` §4c) is *bitwise*: every kernel path
//! accumulates each C element from 0.0 per KC block in ascending-p order
//! with one fused multiply-add chain, so scalar, AVX2 and AVX-512 produce
//! identical bit patterns — not merely close ones. These tests force each
//! path in turn over odd sizes and edge tiles and compare with `==`.
//!
//! `force_kernel_path` is process-global, so every test that touches it
//! holds [`PATH_LOCK`] and restores the default before releasing it.

use pde_tensor::{force_kernel_path, gemm, gemm_nt, gemm_tn, kernel_path, KernelPath};
use proptest::prelude::*;
use std::sync::Mutex;

static PATH_LOCK: Mutex<()> = Mutex::new(());

/// `gemm` / `gemm_tn` / `gemm_nt` all share this signature.
type GemmFn = fn(usize, usize, usize, &[f64], &[f64], &mut [f64]);

/// Deterministic fill in [-1, 1) — same generator as the unit suite.
fn det_fill(buf: &mut [f64], seed: u64) {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    for v in buf.iter_mut() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        *v = (s >> 11) as f64 / (1u64 << 52) as f64 - 1.0;
    }
}

/// The best non-scalar path this machine supports, if any.
fn simd_path() -> Option<KernelPath> {
    [KernelPath::Avx512, KernelPath::Avx2]
        .into_iter()
        .find(|p| p.supported())
}

/// Runs `op` under the forced `path` and returns the C it produced.
fn run_forced(
    path: KernelPath,
    m: usize,
    k: usize,
    n: usize,
    a: &[f64],
    b: &[f64],
    op: GemmFn,
) -> Vec<f64> {
    let mut c = vec![0.0; m * n];
    det_fill(&mut c, 0xC0FFEE); // accumulate into a non-zero C
    force_kernel_path(Some(path));
    op(m, k, n, a, b, &mut c);
    c
}

/// Asserts scalar and SIMD paths agree bitwise on one (m, k, n) shape for
/// all three transpose variants. No-op on machines without SIMD support.
fn check_shape(m: usize, k: usize, n: usize) {
    let Some(simd) = simd_path() else { return };
    let _guard = PATH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let variants: [(&str, GemmFn, usize, usize); 3] = [
        ("gemm", gemm, m * k, k * n),
        ("gemm_tn", gemm_tn, k * m, k * n),
        ("gemm_nt", gemm_nt, m * k, n * k),
    ];
    for (name, op, a_len, b_len) in variants {
        let mut a = vec![0.0; a_len];
        let mut b = vec![0.0; b_len];
        det_fill(&mut a, 1 + (m * 31 + k * 7 + n) as u64);
        det_fill(&mut b, 2 + (m * 17 + k * 3 + n) as u64);
        let c_scalar = run_forced(KernelPath::Scalar, m, k, n, &a, &b, op);
        let c_simd = run_forced(simd, m, k, n, &a, &b, op);
        force_kernel_path(None);
        // Escape hatch for a future target whose FMA contraction genuinely
        // differs: PDEML_KERNEL_TEST_TOLERANCE=rel1e-12 relaxes the bitwise
        // check to a 1e-12 relative tolerance. Never set in this repo's CI.
        if std::env::var("PDEML_KERNEL_TEST_TOLERANCE").as_deref() == Ok("rel1e-12") {
            for (i, (x, y)) in c_scalar.iter().zip(&c_simd).enumerate() {
                let scale = x.abs().max(y.abs()).max(1.0);
                assert!(
                    (x - y).abs() <= 1e-12 * scale,
                    "{name} {m}x{k}x{n}: element {i} differs beyond 1e-12 rel \
                     ({x} vs {y})"
                );
            }
            continue;
        }
        let mismatches = c_scalar
            .iter()
            .zip(&c_simd)
            .filter(|(x, y)| x.to_bits() != y.to_bits())
            .count();
        assert_eq!(
            mismatches,
            0,
            "{name} {m}x{k}x{n}: scalar and {} paths disagree bitwise \
             at {mismatches} of {} elements",
            simd.label(),
            m * n
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random odd sizes, biased small so edge tiles (m % MR, n % NR/TILE,
    /// the m <= 4 panel path) dominate the sweep.
    #[test]
    fn scalar_vs_simd_bitwise_on_random_shapes(
        m in 1usize..=21,
        k in 1usize..=70,
        n in 1usize..=50,
    ) {
        check_shape(m, k, n);
    }
}

/// Hand-picked shapes: every micro-tile remainder class, the m <= 4 edge
/// path, KC-crossing depths and NC-crossing widths.
#[test]
fn scalar_vs_simd_bitwise_on_edge_tiles() {
    for &(m, k, n) in &[
        (1, 1, 1),      // degenerate
        (1, 300, 17),   // single row, k crosses KC = 256
        (3, 64, 16),    // m < MR
        (4, 100, 4096), // layer-3-like small-m wide-n
        (5, 33, 9),     // m = MR + 1 (partial second panel)
        (8, 64, 16),    // exact AVX-512 tile rows
        (9, 300, 33),   // partial 8-row panel + KC crossing + masked n
        (12, 50, 15),   // n < TILE_512, masked both halves
        (16, 150, 47),  // layer-2-like with ragged n
        (17, 257, 31),  // everything ragged, KC + 1
        (6, 40, 300),   // n crosses NC = 256 (column-chunk path)
    ] {
        check_shape(m, k, n);
    }
}

/// Batched entry points agree with per-sample calls under the SIMD path
/// (the unit suite pins this for the default path; here we force SIMD).
#[test]
fn batched_simd_matches_per_sample() {
    let Some(simd) = simd_path() else { return };
    let _guard = PATH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (s, m, k, n) = (3, 9, 70, 33);
    let mut a = vec![0.0; m * k];
    let mut b_all = vec![0.0; s * k * n];
    det_fill(&mut a, 11);
    det_fill(&mut b_all, 12);
    force_kernel_path(Some(simd));
    let mut c_batch = vec![0.0; s * m * n];
    pde_tensor::gemm_batch(s, m, k, n, &a, &b_all, &mut c_batch);
    let mut c_loop = vec![0.0; s * m * n];
    for i in 0..s {
        gemm(
            m,
            k,
            n,
            &a,
            &b_all[i * k * n..][..k * n],
            &mut c_loop[i * m * n..][..m * n],
        );
    }
    force_kernel_path(None);
    assert!(
        c_batch
            .iter()
            .zip(&c_loop)
            .all(|(x, y)| x.to_bits() == y.to_bits()),
        "gemm_batch disagrees with per-sample gemm under {}",
        simd.label()
    );
}

/// A thread budget > 1 must be bit-for-bit identical to budget 1: chunks
/// only partition the (sample, column) space, they never change any
/// element's accumulation order. The budget is thread-local, so this test
/// needs no cross-test serialization beyond the kernel-path lock.
#[test]
fn threaded_matches_unthreaded_bitwise() {
    let _guard = PATH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    force_kernel_path(None);
    // samples > 1 exercises per-sample chunks; n > NC = 256 exercises
    // column chunks within one sample.
    for &(s, m, k, n) in &[(5usize, 9usize, 70usize, 33usize), (1, 16, 150, 600)] {
        let mut a = vec![0.0; m * k];
        let mut b_all = vec![0.0; s * k * n];
        det_fill(&mut a, 21);
        det_fill(&mut b_all, 22);
        pde_tensor::pool::set_thread_budget(1);
        let mut c_1t = vec![0.0; s * m * n];
        pde_tensor::gemm_batch(s, m, k, n, &a, &b_all, &mut c_1t);
        pde_tensor::pool::set_thread_budget(4);
        let mut c_4t = vec![0.0; s * m * n];
        pde_tensor::gemm_batch(s, m, k, n, &a, &b_all, &mut c_4t);
        pde_tensor::pool::set_thread_budget(1);
        assert!(
            c_1t.iter()
                .zip(&c_4t)
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "budget 4 disagrees with budget 1 on {s}x{m}x{k}x{n} under {}",
            kernel_path().label()
        );
    }
}
