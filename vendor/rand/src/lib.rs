//! Offline, dependency-free stand-in for the subset of the `rand` crate API
//! this workspace uses: `StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`
//! over primitive ranges, and `SliceRandom::shuffle`.
//!
//! The build environment has no registry access, so the real crate cannot be
//! fetched. This shim only promises *internal* determinism (same seed → same
//! stream on every platform), not bit-compatibility with upstream `rand`.
//! All seeded-reproducibility tests in the workspace compare runs of this
//! generator against itself, so that is sufficient.
//!
//! Generator: xoshiro256** seeded through SplitMix64 — the same construction
//! upstream `rand` 0.8 documents for small-state PRNGs.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a small seed.
pub trait SeedableRng: Sized {
    /// Deterministically builds a generator from a single `u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from the generator's raw 64-bit output.
pub trait Standard01: Sized {
    /// Maps 64 random bits to a sample.
    fn from_bits(bits: u64) -> Self;
}

impl Standard01 for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_bits(bits: u64) -> Self {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard01 for u64 {
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

impl Standard01 for u32 {
    fn from_bits(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

impl Standard01 for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one sample from `rng`.
    ///
    /// # Panics
    /// If the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let u = <f64 as Standard01>::from_bits(rng.next_u64());
        self.start + (self.end - self.start) * u
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

/// The user-facing sampling interface, blanket-implemented for every core
/// generator like upstream `rand`.
pub trait Rng: RngCore {
    /// Samples a value of `T` from its "standard" distribution
    /// (`[0, 1)` for floats).
    fn gen<T: Standard01>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// Uniform sample from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    /// Deterministic xoshiro256** generator — the workspace's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the 256-bit state.
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers (`shuffle`).

    use crate::RngCore;

    /// In-place random permutation of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range(-2.5..1.5);
            assert!((-2.5..1.5).contains(&x));
            let k = rng.gen_range(3usize..9);
            assert!((3..9).contains(&k));
            let k = rng.gen_range(4usize..=6);
            assert!((4..=6).contains(&k));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut StdRng::seed_from_u64(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should not be identity");
    }
}
