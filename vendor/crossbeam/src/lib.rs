//! Offline stand-in for the slice of `crossbeam` this workspace uses:
//! `channel::{unbounded, Sender, Receiver, RecvTimeoutError}` and
//! `thread::scope`/`Scope::spawn`.
//!
//! Backed entirely by `std`: `std::sync::mpsc` channels (whose `Sender` is
//! `Clone + Send` and whose `recv_timeout`/`try_recv` semantics match what
//! `commsim` relies on) and `std::thread::scope` for structured spawning.
//! The observable differences from real crossbeam are not exercised here:
//! `commsim` uses one consumer per receiver and joins every handle.

#![forbid(unsafe_code)]

pub mod channel {
    //! MPSC channels with the crossbeam naming.

    pub use std::sync::mpsc::{
        Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
    };

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

pub mod thread {
    //! Scoped threads with the crossbeam 0.8 calling convention
    //! (`scope` returns a `Result`, spawn closures receive `&Scope`).

    use std::any::Any;

    /// Error payload of a propagated panic.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A scope handle; passed by reference to `scope` and `spawn` closures.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result, or the panic payload.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the scope
        /// again so it can spawn siblings (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let child = Scope { inner: self.inner };
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&child)),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing from the caller's stack is
    /// allowed; all spawned threads are joined before this returns.
    ///
    /// Unlike real crossbeam, a panic in an unjoined child propagates out of
    /// this call directly instead of being collected into the `Err` variant;
    /// callers here always join explicitly, so the distinction is unobservable.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unbounded_channel_roundtrip() {
        let (tx, rx) = super::channel::unbounded();
        tx.send(41_i32).unwrap();
        let tx2 = tx.clone();
        tx2.send(1).unwrap();
        assert_eq!(rx.recv().unwrap() + rx.recv().unwrap(), 42);
    }

    #[test]
    fn scope_joins_and_borrows() {
        let data = [1_u64, 2, 3, 4];
        let total = super::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let out = super::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(out, 7);
    }
}
