//! Offline stand-in for the subset of `criterion` this workspace uses:
//! `criterion_group!`/`criterion_main!`, `Criterion::{benchmark_group,
//! bench_function}`, `BenchmarkGroup::{sample_size, throughput,
//! bench_with_input, finish}`, `BenchmarkId`, and `Bencher::iter`.
//!
//! Measurement model: one warm-up call, then timed batches until either the
//! configured sample count or a wall-clock budget is reached; the mean
//! seconds/iteration is recorded and printed. Results are additionally kept
//! on the `Criterion` value (`results()`) so benches can export machine-
//! readable baselines — the real crate writes `target/criterion/` instead.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Wall-clock budget per benchmark (after warm-up).
const TIME_BUDGET: Duration = Duration::from_secs(3);

/// One recorded measurement.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Full benchmark id (`group/function` or `group/parameter`).
    pub id: String,
    /// Mean wall-clock seconds per iteration.
    pub mean_s: f64,
    /// Number of timed iterations behind the mean.
    pub iters: u64,
}

/// Identifies one benchmark inside a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Throughput annotation (accepted and ignored; GFLOP/s reporting in this
/// workspace is computed by the benches themselves).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Runs closures under a timing loop and collects the results.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchRecord>,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run_one(id.to_string(), 100, &mut f);
        self
    }

    /// All measurements recorded so far.
    pub fn results(&self) -> &[BenchRecord] {
        &self.results
    }

    fn run_one(&mut self, id: String, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: sample_size.max(1) as u64,
            observed: None,
        };
        f(&mut b);
        let (mean_s, iters) = b
            .observed
            .unwrap_or_else(|| panic!("bench {id}: Bencher::iter never called"));
        println!("bench {id:<60} {:>14.3e} s/iter ({iters} iters)", mean_s);
        self.results.push(BenchRecord { id, mean_s, iters });
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of timed iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Accepts a throughput annotation (not used by the timing loop).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` against one `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        self.c.run_one(full, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Benchmarks a function with no extra input.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.c.run_one(full, self.sample_size, &mut f);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to bench closures; runs and times the measured routine.
pub struct Bencher {
    samples: u64,
    observed: Option<(f64, u64)>,
}

impl Bencher {
    /// Times `f`, storing the mean seconds/iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up, untimed
        let mut iters: u64 = 0;
        let mut elapsed = Duration::ZERO;
        while iters < self.samples && elapsed < TIME_BUDGET {
            let start = Instant::now();
            std::hint::black_box(f());
            elapsed += start.elapsed();
            iters += 1;
        }
        self.observed = Some((elapsed.as_secs_f64() / iters as f64, iters));
    }
}

/// Declares a function that runs the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        c.bench_function("plain", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn records_results() {
        let mut c = Criterion::default();
        tiny(&mut c);
        let r = c.results();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].id, "g/3");
        assert_eq!(r[1].id, "plain");
        assert!(r.iter().all(|rec| rec.mean_s >= 0.0 && rec.iters >= 1));
    }
}
