//! Offline stand-in for the subset of `proptest` this workspace uses:
//! the `proptest!` macro with `#![proptest_config(...)]`, range / tuple /
//! `prop::collection::vec` / `prop::sample::select` strategies,
//! `prop_map`/`prop_flat_map` combinators, and the `prop_assert*` /
//! `prop_assume!` assertion macros.
//!
//! No shrinking: a failing case panics with the assertion message directly.
//! Generation is deterministic — the RNG is seeded from the test's name, so
//! failures reproduce exactly on re-run.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Configuration and case-level error plumbing.

    /// Per-`proptest!` block configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted cases each test must pass.
        pub cases: u32,
        /// Upper bound on `prop_assume!` rejections before giving up.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 64,
                max_global_rejects: 4096,
            }
        }
    }

    impl ProptestConfig {
        /// A config that runs `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed — the case is skipped, not a failure.
        Reject(String),
        /// A `prop_assert*` failed — the whole test fails.
        Fail(String),
    }

    /// Deterministic xoshiro256** generator used for case generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary label (the test name).
        pub fn deterministic(label: &str) -> Self {
            // FNV-1a over the label, then SplitMix64 state expansion.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut sm = h;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! Value-generation strategies and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Something that can generate values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Generates an intermediate value, then a value from the strategy
        /// `f` builds out of it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.gen_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.gen_value(rng)).gen_value(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn gen_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "strategy: empty f64 range");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy: empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "strategy: empty inclusive range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(usize, u64, u32, i64, i32, u8);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (S0.0)
        (S0.0, S1.1)
        (S0.0, S1.1, S2.2)
        (S0.0, S1.1, S2.2, S3.3)
        (S0.0, S1.1, S2.2, S3.3, S4.4)
        (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "vec strategy: empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "vec strategy: empty size range");
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling from explicit sets.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed list.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Uniform choice from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "sample::select: empty options");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn adds(a in 0u32..10, b in 0u32..10) {
///         prop_assert!(a + b < 20);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::gen_value(
                            &($strat),
                            &mut rng,
                        );
                    )+
                    let outcome = (move ||
                        -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {
                            rejected += 1;
                            assert!(
                                rejected <= config.max_global_rejects,
                                "proptest {}: too many rejected cases ({})",
                                stringify!($name),
                                rejected,
                            );
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest {} failed at case {}: {}",
                                stringify!($name),
                                accepted,
                                msg,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Skips the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Reject(
                    ::std::string::String::from(stringify!($cond)),
                ),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Reject(
                    ::std::format!($($fmt)+),
                ),
            );
        }
    };
}

/// Fails the current test when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(
                    ::std::format!("assertion failed: {}", stringify!($cond)),
                ),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current test when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!(
                    "assert_eq failed: `{:?}` != `{:?}`",
                    left,
                    right,
                )),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!($($fmt)+)),
            );
        }
    }};
}

pub mod prelude {
    //! Everything a property-test module needs, mirroring upstream's prelude.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    pub mod prop {
        //! Namespaced strategy modules (`prop::collection`, `prop::sample`).
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 3usize..9, x in -2.0f64..2.0, k in 1usize..=4) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((1..=4).contains(&k));
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec(0u32..10, 2..6),
            pick in prop::sample::select(vec![2usize, 3]),
        ) {
            prop_assume!(!v.is_empty());
            prop_assert!(v.len() >= 2 && v.len() < 6, "len was {}", v.len());
            prop_assert!(pick == 2 || pick == 3);
        }

        #[test]
        fn flat_map_threads_values(
            pair in (2usize..5, 2usize..5).prop_flat_map(|(h, w)| {
                prop::collection::vec(0.0f64..1.0, h * w)
                    .prop_map(move |data| (h, w, data))
            }),
        ) {
            let (h, w, data) = pair;
            prop_assert_eq!(data.len(), h * w);
        }
    }

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(
            (0..16).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..16).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
