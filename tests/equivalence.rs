//! Equivalence guarantees of the parallel scheme.
//!
//! The paper's claim that the scheme "preserv\[es\] the learning quality"
//! rests on parallel execution changing *nothing* about each network's
//! training, and the halo exchange reconstructing *exactly* the overlapping
//! inputs. These tests pin both properties down bit-for-bit.

use pde_euler::dataset::paper_dataset;
use pde_ml_core::prelude::*;
use pde_ml_core::train::train_rank;
use pde_nn::serialize::restore;
use pde_tensor::assert_slice_close;

#[test]
fn parallel_training_equals_isolated_per_rank_training() {
    // Running P ranks concurrently must produce, per rank, the exact same
    // weights as running that rank's training alone — no interference, no
    // reordering, no shared-RNG coupling.
    let data = paper_dataset(16, 10);
    let arch = ArchSpec::tiny();
    let cfg = TrainConfig::quick_test();
    for strategy in [PaddingStrategy::ZeroPad, PaddingStrategy::NeighborPad] {
        let outcome = ParallelTrainer::new(arch.clone(), strategy, cfg.clone())
            .train(&data, 4)
            .expect("parallel");
        let part = outcome.partition;
        let view = data.view(0, data.pair_count());
        for r in 0..4 {
            let (w, losses) = train_rank(&arch, strategy, &cfg, &view, &part, r);
            assert_eq!(outcome.rank_results[r].weights, w, "{strategy:?} rank {r}");
            assert_eq!(outcome.rank_results[r].epoch_losses, losses);
        }
    }
}

#[test]
fn repeated_parallel_runs_are_bitwise_reproducible() {
    let data = paper_dataset(16, 8);
    let arch = ArchSpec::tiny();
    let cfg = TrainConfig::quick_test();
    let t = ParallelTrainer::new(arch, PaddingStrategy::NeighborPad, cfg);
    let a = t.train(&data, 4).unwrap();
    let b = t.train(&data, 4).unwrap();
    for (ra, rb) in a.rank_results.iter().zip(&b.rank_results) {
        assert_eq!(ra.weights, rb.weights);
        assert_eq!(ra.epoch_losses, rb.epoch_losses);
    }
}

#[test]
fn halo_exchange_rollout_equals_global_window_rollout() {
    // The parallel rollout's two-phase halo exchange must assemble, on
    // every rank and at every step, exactly the input that a global
    // observer would cut from the stitched state. 3×3 ranks exercises
    // interior, edge and corner cases at once.
    let data = paper_dataset(18, 10);
    let arch = ArchSpec::tiny();
    let cfg = TrainConfig::quick_test();
    let outcome = ParallelTrainer::new(arch.clone(), PaddingStrategy::NeighborPad, cfg)
        .train(&data, 9)
        .expect("training");
    assert_eq!(outcome.partition.py(), 3);
    let inf = ParallelInference::from_outcome(arch, PaddingStrategy::NeighborPad, &outcome);
    let initial = data.snapshot(0).clone();
    let par = inf.rollout(&initial, 4).unwrap();
    let refr = inf.reference_rollout(&initial, 4);
    for (k, (a, b)) in par.states.iter().zip(&refr).enumerate() {
        assert_slice_close(
            a.as_slice(),
            b.as_slice(),
            1e-13,
            1e-13,
            &format!("step {k}"),
        );
    }
}

#[test]
fn one_rank_parallel_equals_sequential_trainer() {
    // P = 1 must reduce to the sequential trainer exactly (same seed paths).
    let data = paper_dataset(16, 8);
    let arch = ArchSpec::tiny();
    let cfg = TrainConfig::quick_test();
    let par = ParallelTrainer::new(arch.clone(), PaddingStrategy::ZeroPad, cfg.clone())
        .train_view(&data, 6, 1)
        .expect("parallel");
    let mut seq = SequentialTrainer::new(arch, PaddingStrategy::ZeroPad, cfg)
        .train(&data, 6)
        .expect("sequential");
    assert_eq!(par.rank_results[0].epoch_losses, seq.epoch_losses);
    assert_eq!(
        par.rank_results[0].weights,
        pde_nn::serialize::snapshot(&mut seq.net)
    );
    assert_eq!(par.norm, seq.norm);
}

#[test]
fn weights_survive_serialization_round_trip() {
    // Checkpoint → reload → identical inference, across rank boundaries.
    let data = paper_dataset(16, 8);
    let arch = ArchSpec::tiny();
    let cfg = TrainConfig::quick_test();
    let outcome = ParallelTrainer::new(arch.clone(), PaddingStrategy::NeighborPad, cfg)
        .train(&data, 4)
        .expect("training");
    let dir = std::env::temp_dir().join("pde_ml_equivalence_ckpt");
    std::fs::create_dir_all(&dir).unwrap();
    let mut reloaded = Vec::new();
    for r in &outcome.rank_results {
        let path = dir.join(format!("rank{}.pdenn", r.rank));
        let mut net = arch.build(false, 0);
        restore(&mut net, &r.weights);
        pde_nn::serialize::save_params(&mut net, &path).unwrap();
        let mut net2 = arch.build(false, 99);
        pde_nn::serialize::load_params(&mut net2, &path).unwrap();
        reloaded.push(pde_nn::serialize::snapshot(&mut net2));
        std::fs::remove_file(&path).ok();
    }
    let inf_orig =
        ParallelInference::from_outcome(arch.clone(), PaddingStrategy::NeighborPad, &outcome);
    let inf_reloaded = ParallelInference::new(
        arch,
        PaddingStrategy::NeighborPad,
        outcome.partition,
        reloaded,
        outcome.norm.clone(),
        outcome.prediction,
    );
    let initial = data.snapshot(0).clone();
    let a = inf_orig.rollout(&initial, 2).unwrap();
    let b = inf_reloaded.rollout(&initial, 2).unwrap();
    for (x, y) in a.states.iter().zip(&b.states) {
        assert_eq!(x, y);
    }
}

#[test]
fn windowed_rollout_matches_reference() {
    // Time-window extension (X6): a window-2 model's threaded halo-exchange
    // rollout must equal the global-window oracle bit-for-bit, like the
    // window-1 case.
    let data = paper_dataset(16, 12);
    let mut arch = ArchSpec::tiny();
    arch.channels[0] = 8; // 2 snapshots × 4 fields
    let mut cfg = TrainConfig::quick_test();
    cfg.window = 2;
    let outcome = ParallelTrainer::new(arch.clone(), PaddingStrategy::NeighborPad, cfg)
        .train(&data, 4)
        .expect("windowed training");
    assert_eq!(outcome.window, 2);
    assert_eq!(
        outcome.total_bytes_sent(),
        0,
        "windowed training is still communication-free"
    );
    let inf = ParallelInference::from_outcome(arch, PaddingStrategy::NeighborPad, &outcome);
    let history = [data.snapshot(5).clone(), data.snapshot(6).clone()];
    let par = inf.rollout_from_history(&history, 3).unwrap();
    let refr = inf.reference_rollout_from_history(&history, 3);
    assert_eq!(par.states.len(), 4);
    for (k, (a, b)) in par.states.iter().zip(&refr).enumerate() {
        assert_slice_close(
            a.as_slice(),
            b.as_slice(),
            1e-12,
            1e-12,
            &format!("win step {k}"),
        );
    }
    // Two exchanges per step per axis-neighbor (one per window slot).
    let steps = 3u64;
    for t in &par.traffic {
        assert_eq!(
            t.msgs_sent,
            2 * 2 * steps,
            "per-rank message count with window 2"
        );
    }
}

#[test]
fn strict_and_degrade_rollouts_agree_bitwise_without_faults() {
    // HaloPolicy::Strict is the exact pre-resilience code path, and with no
    // fault plan Degrade must be *observationally* identical: same states
    // bit-for-bit (every strip arrives, so fallbacks never engage), zero
    // loss/fallback counters, same payload bytes. Only the message count
    // differs (the synchronized degraded exchange adds barrier traffic).
    let data = paper_dataset(16, 8);
    let arch = ArchSpec::tiny();
    let cfg = TrainConfig::quick_test();
    let outcome = ParallelTrainer::new(arch.clone(), PaddingStrategy::NeighborPad, cfg)
        .train(&data, 4)
        .expect("training");
    let inf = ParallelInference::from_outcome(arch.clone(), PaddingStrategy::NeighborPad, &outcome);
    let initial = data.snapshot(0).clone();
    let strict = inf.rollout(&initial, 3).unwrap();
    let refr = inf.reference_rollout(&initial, 3);
    for policy in [
        HaloPolicy::Degrade {
            timeout: pde_commsim::test_timeout(),
            fallback: HaloFallback::ZeroFill,
        },
        HaloPolicy::Degrade {
            timeout: pde_commsim::test_timeout(),
            fallback: HaloFallback::LastKnown,
        },
    ] {
        let inf2 =
            ParallelInference::from_outcome(arch.clone(), PaddingStrategy::NeighborPad, &outcome)
                .with_halo_policy(policy);
        let degraded = inf2.rollout(&initial, 3).unwrap();
        assert!(!degraded.degraded(), "healthy world: nothing lost");
        assert_eq!(degraded.total_fallbacks(), 0);
        for (k, (a, b)) in strict.states.iter().zip(&degraded.states).enumerate() {
            assert_eq!(
                a.as_slice(),
                b.as_slice(),
                "step {k}: healthy Degrade must equal Strict bitwise"
            );
        }
        for (k, (a, b)) in degraded.states.iter().zip(&refr).enumerate() {
            assert_eq!(
                a.as_slice(),
                b.as_slice(),
                "step {k}: … and therefore the reference oracle"
            );
        }
        for (s, d) in strict.traffic.iter().zip(&degraded.traffic) {
            assert_eq!(s.bytes_sent, d.bytes_sent, "same strip payloads");
        }
    }
}

#[test]
fn warm_engine_rollouts_equal_cold_rollouts_bitwise_strict() {
    // A warm InferEngine request reuses threads, comms, the restored
    // networks and every scratch tensor — and must still be
    // indistinguishable, bit for bit, from a cold ParallelInference call
    // that builds all of that from nothing. 3×3 ranks exercises interior,
    // edge and corner halo paths through the resident CartComms.
    let data = paper_dataset(18, 10);
    let arch = ArchSpec::tiny();
    let cfg = TrainConfig::quick_test();
    let outcome = ParallelTrainer::new(arch.clone(), PaddingStrategy::NeighborPad, cfg)
        .train(&data, 9)
        .expect("training");
    let inf = ParallelInference::from_outcome(arch, PaddingStrategy::NeighborPad, &outcome);
    let mut engine = InferEngine::new(9);
    engine.register("m", inf.clone()).unwrap();
    for (request, start) in [0usize, 3, 0].into_iter().enumerate() {
        let initial = data.snapshot(start).clone();
        let cold = inf.rollout(&initial, 3).unwrap();
        let warm = engine.rollout("m", &initial, 3).unwrap();
        for (k, (a, b)) in warm.states.iter().zip(&cold.states).enumerate() {
            assert_eq!(
                a.as_slice(),
                b.as_slice(),
                "request {request} step {k}: warm engine must equal cold world bitwise"
            );
        }
        for (rank, (w, c)) in warm.traffic.iter().zip(&cold.traffic).enumerate() {
            assert_eq!(w.msgs_sent, c.msgs_sent, "request {request} rank {rank}");
            assert_eq!(w.bytes_sent, c.bytes_sent, "request {request} rank {rank}");
        }
    }
}

#[test]
fn warm_engine_rollouts_equal_cold_rollouts_under_seeded_loss() {
    // Under a seeded per-message loss plan each fault decision is a pure
    // hash of (seed, src, dst, tag) — NOT of the comm generation — so a
    // warm engine request must lose exactly the same
    // strips as a cold world under the same plan, and degrade to exactly
    // the same states. This is the property generation-tagging was designed
    // to preserve (DESIGN.md §4f).
    let data = paper_dataset(16, 8);
    let arch = ArchSpec::tiny();
    let cfg = TrainConfig::quick_test();
    let outcome = ParallelTrainer::new(arch.clone(), PaddingStrategy::NeighborPad, cfg)
        .train(&data, 4)
        .expect("training");
    let plan = FaultPlan::loss_rate(0.25, 0xD1CE);
    for fallback in [HaloFallback::ZeroFill, HaloFallback::LastKnown] {
        let policy = HaloPolicy::Degrade {
            timeout: pde_commsim::test_timeout(),
            fallback,
        };
        let inf =
            ParallelInference::from_outcome(arch.clone(), PaddingStrategy::NeighborPad, &outcome)
                .with_halo_policy(policy);
        let cold = inf
            .clone()
            .with_fault_plan(plan.clone())
            .rollout(data.snapshot(1), 3)
            .unwrap();
        let mut engine =
            InferEngine::with_config(EngineConfig::new(4).with_fault_plan(plan.clone()));
        engine.register("m", inf).unwrap();
        for request in 0..2 {
            let warm = engine.rollout("m", data.snapshot(1), 3).unwrap();
            for (k, (a, b)) in warm.states.iter().zip(&cold.states).enumerate() {
                assert_eq!(
                    a.as_slice(),
                    b.as_slice(),
                    "{fallback:?} request {request} step {k}"
                );
            }
            for (rank, (w, c)) in warm.traffic.iter().zip(&cold.traffic).enumerate() {
                assert_eq!(
                    w.halos_lost, c.halos_lost,
                    "{fallback:?} request {request} rank {rank}: loss pattern"
                );
                assert_eq!(
                    w.fallbacks(),
                    c.fallbacks(),
                    "{fallback:?} request {request} rank {rank}: substitutions"
                );
            }
        }
    }
}

#[test]
fn rollouts_are_bitwise_identical_over_channel_and_tcp_transports() {
    // The Transport trait promises the mesh below CartComm is
    // interchangeable: a localhost TCP world must reproduce the in-process
    // channel world's rollout bit-for-bit AND its TrafficReport counters
    // exactly — framing and sockets may not perturb a single message.
    let data = paper_dataset(16, 8);
    let arch = ArchSpec::tiny();
    let cfg = TrainConfig::quick_test();
    let outcome = ParallelTrainer::new(arch.clone(), PaddingStrategy::NeighborPad, cfg)
        .train(&data, 4)
        .expect("training");
    let inf = ParallelInference::from_outcome(arch, PaddingStrategy::NeighborPad, &outcome);
    let initial = data.snapshot(0).clone();
    let channel = inf.rollout(&initial, 3).unwrap();
    let tcp = inf
        .clone()
        .with_transport(pde_commsim::TransportKind::Tcp)
        .rollout(&initial, 3)
        .unwrap();
    for (k, (a, b)) in channel.states.iter().zip(&tcp.states).enumerate() {
        assert_eq!(
            a.as_slice(),
            b.as_slice(),
            "step {k}: TCP rollout must equal channel rollout bitwise"
        );
    }
    assert_eq!(
        channel.traffic, tcp.traffic,
        "per-rank traffic counters must be transport-independent"
    );
}

#[test]
fn warm_engine_over_tcp_equals_channel_engine_bitwise() {
    // The resident engine holds its CartComms (and therefore its transport)
    // across requests. A TCP-backed engine must serve the same bits and the
    // same per-request traffic deltas as the default channel engine.
    let data = paper_dataset(16, 8);
    let arch = ArchSpec::tiny();
    let cfg = TrainConfig::quick_test();
    let outcome = ParallelTrainer::new(arch.clone(), PaddingStrategy::NeighborPad, cfg)
        .train(&data, 4)
        .expect("training");
    let inf = ParallelInference::from_outcome(arch, PaddingStrategy::NeighborPad, &outcome);
    let mut channel_engine = InferEngine::new(4);
    channel_engine.register("m", inf.clone()).unwrap();
    let mut tcp_engine = InferEngine::with_config(
        EngineConfig::new(4).with_transport(pde_commsim::TransportKind::Tcp),
    );
    tcp_engine.register("m", inf).unwrap();
    for request in 0..2 {
        let initial = data.snapshot(request).clone();
        let a = channel_engine.rollout("m", &initial, 3).unwrap();
        let b = tcp_engine.rollout("m", &initial, 3).unwrap();
        for (k, (x, y)) in a.states.iter().zip(&b.states).enumerate() {
            assert_eq!(x.as_slice(), y.as_slice(), "request {request} step {k}");
        }
        assert_eq!(a.traffic, b.traffic, "request {request}: traffic deltas");
    }
}

#[test]
fn window_one_windowed_api_matches_plain_rollout() {
    let data = paper_dataset(16, 8);
    let arch = ArchSpec::tiny();
    let cfg = TrainConfig::quick_test();
    let outcome = ParallelTrainer::new(arch.clone(), PaddingStrategy::NeighborPad, cfg)
        .train(&data, 4)
        .expect("training");
    let inf = ParallelInference::from_outcome(arch, PaddingStrategy::NeighborPad, &outcome);
    let initial = data.snapshot(0).clone();
    let a = inf.rollout(&initial, 2).unwrap();
    let b = inf
        .rollout_from_history(std::slice::from_ref(&initial), 2)
        .unwrap();
    for (x, y) in a.states.iter().zip(&b.states) {
        assert_eq!(x, y);
    }
}
