//! Chaos harness: deterministic kill-and-recover for self-healing worlds.
//!
//! A [`ChaosPlan`] schedules rank deaths (`kill:RANK:REQUEST[:STEP]`) the
//! way a [`FaultPlan`] schedules message loss — seeded, reproducible, and
//! injected at step boundaries. These tests drive the full recovery loop
//! on BOTH transports: a rank dies mid-batch, the supervisor respawns it,
//! the engine rebuilds the mesh under a fresh generation epoch and
//! re-serves, and the final rollouts must be **bitwise identical** to a
//! world that never lost anyone. Recovery must also be observable (the
//! `pdeml_rank_respawns_total` / `pdeml_recovery_ms` series) and bounded
//! in time — a heal that quietly hangs is worse than a crash.
//!
//! The telemetry registry is process-global and tests in this binary run
//! concurrently, so every metrics assertion is a *delta* (or a ≥ bound),
//! never an absolute equality.

use pde_commsim::{test_timeout, ChaosPlan, Supervisor, TransportKind, World};
use pde_ml_core::prelude::*;
use pde_telemetry::health::{ranks_alive_check, CheckStatus, Health, HealthModel};
use std::time::{Duration, Instant};

/// A trained 4-rank fleet whose rollouts exchange halos (neighbor-pad), so
/// a dead rank actually matters to its neighbors.
fn trained_fleet(policy: HaloPolicy) -> (pde_euler::DataSet, ParallelInference) {
    let data = pde_euler::dataset::paper_dataset(16, 8);
    let arch = ArchSpec::tiny();
    let outcome = ParallelTrainer::new(
        arch.clone(),
        PaddingStrategy::NeighborPad,
        TrainConfig::quick_test(),
    )
    .train_view(&data, 6, 4)
    .unwrap();
    let inf = ParallelInference::from_outcome(arch, PaddingStrategy::NeighborPad, &outcome)
        .with_halo_policy(policy);
    (data, inf)
}

fn degrade_last_known() -> HaloPolicy {
    HaloPolicy::Degrade {
        timeout: test_timeout(),
        fallback: HaloFallback::LastKnown,
    }
}

fn assert_bitwise(a: &RolloutResult, b: &RolloutResult, what: &str) {
    assert_eq!(a.states.len(), b.states.len(), "{what}: state counts");
    for (k, (x, y)) in a.states.iter().zip(&b.states).enumerate() {
        let same = x
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .all(|(p, q)| p.to_bits() == q.to_bits());
        assert!(same, "{what}: step {k} diverges bitwise");
    }
}

/// The tentpole property, once per transport: kill rank 2 during request 1,
/// heal, and every request the caller observes — including the retried one
/// — is bitwise what a never-killed world serves.
fn kill_and_recover_is_bitwise(transport: TransportKind) {
    let (data, inf) = trained_fleet(degrade_last_known());
    let initial = data.snapshot(0).clone();

    let mut reference = InferEngine::with_config(EngineConfig::new(4).with_transport(transport));
    reference.register("m", inf.clone()).unwrap();

    let plan = ChaosPlan::parse_for("kill:2:1", 4).unwrap();
    let mut chaotic = InferEngine::with_config(
        EngineConfig::new(4)
            .with_transport(transport)
            .with_chaos_plan(plan)
            .with_self_heal(),
    );
    chaotic.register("m", inf).unwrap();

    let respawns = pde_telemetry::counter(
        "pdeml_rank_respawns_total",
        "Dead ranks brought back by a supervisor, per rank",
    );
    let recoveries = pde_telemetry::histogram(
        "pdeml_recovery_ms",
        "Wall-clock milliseconds from dead-rank detection to a rebuilt world",
    );
    let respawns_before = respawns.get(2);
    let recoveries_before = recoveries.count();

    for request in 0..3 {
        let want = reference.rollout("m", &initial, 2).unwrap();
        let t0 = Instant::now();
        let got = chaotic.rollout("m", &initial, 2).unwrap();
        let elapsed = t0.elapsed();
        assert_bitwise(
            &got,
            &want,
            &format!("{transport:?} request {request} (kill fires on request 1)"),
        );
        // Bounded time-to-recovery: the healing request may pay the halo
        // timeout (the degraded serve of the doomed attempt) plus the
        // respawn, but never hang.
        assert!(
            elapsed < test_timeout() * 4 + Duration::from_secs(5),
            "{transport:?} request {request} took {elapsed:?} — recovery must be bounded"
        );
    }

    assert_eq!(
        respawns.get(2),
        respawns_before + 1,
        "exactly one rank-2 respawn on the {transport:?} engine's shard"
    );
    assert!(
        recoveries.count() > recoveries_before,
        "the recovery gap must land on pdeml_recovery_ms"
    );
    // Observable the way an operator sees it: the Prometheus exposition
    // carries the per-rank respawn shard.
    let metrics = pde_telemetry::render_prometheus();
    assert!(
        metrics.contains("pdeml_rank_respawns_total{rank=\"2\"}"),
        "/metrics must expose the respawned rank"
    );

    assert!(
        !chaotic.is_poisoned(),
        "a healed world is not a poisoned world"
    );
}

#[test]
fn kill_and_recover_is_bitwise_on_the_channel_transport() {
    kill_and_recover_is_bitwise(TransportKind::Channel);
}

#[test]
fn kill_and_recover_is_bitwise_on_the_tcp_transport() {
    kill_and_recover_is_bitwise(TransportKind::Tcp);
}

#[test]
fn a_mid_rollout_kill_heals_too() {
    // Death between steps (step 1 of 3) instead of at the request top: the
    // survivors are already holding step-0 halos from the victim. The heal
    // must still converge to the never-killed bits.
    let (data, inf) = trained_fleet(degrade_last_known());
    let initial = data.snapshot(0).clone();
    let reference = inf.rollout(&initial, 3).unwrap();

    let plan = ChaosPlan::parse_for("kill:1:0:1", 4).unwrap();
    let mut engine =
        InferEngine::with_config(EngineConfig::new(4).with_chaos_plan(plan).with_self_heal());
    engine.register("m", inf).unwrap();
    let got = engine.rollout("m", &initial, 3).unwrap();
    assert_bitwise(&got, &reference, "mid-rollout kill");
}

#[test]
fn chaos_without_self_heal_kills_the_world() {
    // The control: the same kill with healing off must behave like any
    // rank panic — the request fails and the world is poisoned, because an
    // unrecovered dead rank's subdomain is simply gone.
    let (data, inf) = trained_fleet(degrade_last_known());
    let initial = data.snapshot(0).clone();
    let plan = ChaosPlan::parse_for("kill:2:0", 4).unwrap();
    let mut engine = InferEngine::with_config(EngineConfig::new(4).with_chaos_plan(plan));
    engine.register("m", inf).unwrap();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        engine.rollout("m", &initial, 2)
    }));
    assert!(
        outcome.is_err(),
        "an unhealed chaos kill must propagate as a rank panic"
    );
    assert!(engine.is_poisoned(), "and poison the world");
    let again = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        engine.rollout("m", &initial, 2)
    }));
    assert!(
        again.is_err(),
        "later requests must be refused, not served degraded"
    );
}

#[test]
fn repeated_kills_exhaust_the_retry_budget() {
    // One kill per serve attempt on the same request (retries re-run the
    // same request index, so three one-shot events fire on attempts 1, 2
    // and 3): the engine heals and retries a bounded number of times, then
    // reports Recovering instead of looping forever.
    let (data, inf) = trained_fleet(degrade_last_known());
    let initial = data.snapshot(0).clone();
    let plan = ChaosPlan::new(
        (0..3)
            .map(|_| pde_commsim::KillSpec {
                rank: 2,
                request: 0,
                step: 0,
            })
            .collect(),
    );
    let mut engine =
        InferEngine::with_config(EngineConfig::new(4).with_chaos_plan(plan).with_self_heal());
    engine.register("m", inf.clone()).unwrap();
    let err = match engine.rollout("m", &initial, 2) {
        Ok(_) => panic!("must give up, not serve"),
        Err(e) => e,
    };
    assert!(
        matches!(err, InferError::Recovering { .. }),
        "got {err} — expected the Recovering give-up error"
    );
    assert!(
        !engine.is_poisoned(),
        "giving up on one request must not poison the healed world"
    );
    // The give-up path healed the world on its way out, so the same engine
    // serves cleanly once the chaos stops — bitwise against the cold world.
    let reference = inf.rollout(&initial, 2).unwrap();
    let got = engine.rollout("m", &initial, 2).unwrap();
    assert_bitwise(&got, &reference, "post-give-up request");
}

#[test]
fn health_model_tracks_kill_detect_respawn_end_to_end() {
    // The operator's view of a heal, on the raw world layer: ranks_alive
    // goes Ok → Failed("dead ranks: 2") → Ok as a rank dies and the
    // supervisor brings it back, with no re-registration.
    let mut world = World::new(4).spawn_persistent();
    let health = HealthModel::new();
    health.register("ranks_alive", ranks_alive_check(world.alive_flags()));
    assert_eq!(health.report().overall, Health::Healthy);

    let gen = world.alloc_generations(1);
    let results = world.run_collect(gen, |ctx| {
        if ctx.rank() == 2 {
            panic!("chaos: killed rank 2");
        }
    });
    assert!(results[2].is_err(), "rank 2 died");
    assert_eq!(world.dead_ranks(), vec![2]);
    let report = health.report();
    assert_eq!(report.overall, Health::Unhealthy);
    assert!(matches!(
        &report.checks[0].1,
        CheckStatus::Failed(why) if why.contains("dead ranks: 2")
    ));

    let healed = Supervisor::heal(&mut world, |mut ctx, comm, _was_dead| {
        ctx.put_comm(comm);
    })
    .expect("a world with a corpse must heal");
    assert_eq!(healed.respawned, vec![2]);
    assert_eq!(
        health.report().overall,
        Health::Healthy,
        "the live check must see the re-armed flag without re-registration"
    );

    // And the healed world still computes: a ring pass touches every rank.
    let gen = world.alloc_generations(1);
    let out = world.run_collect(gen, |mut ctx| {
        let rank = ctx.rank();
        let size = ctx.size();
        let comm = ctx.comm();
        comm.send((rank + 1) % size, 5, vec![rank as f64]);
        comm.recv((rank + size - 1) % size, 5)[0]
    });
    let values: Vec<f64> = out.into_iter().map(|r| r.unwrap()).collect();
    assert_eq!(values, vec![3.0, 0.0, 1.0, 2.0]);
}

#[test]
fn chaos_plan_is_deterministic_across_runs() {
    // Two engines built from the same spec string observe the same kill at
    // the same point — the reproducibility contract that makes a chaos
    // failure debuggable.
    let (data, inf) = trained_fleet(degrade_last_known());
    let initial = data.snapshot(0).clone();
    let mut runs = Vec::new();
    for _ in 0..2 {
        let plan = ChaosPlan::parse_for("kill:3:1", 4).unwrap();
        let mut engine =
            InferEngine::with_config(EngineConfig::new(4).with_chaos_plan(plan).with_self_heal());
        engine.register("m", inf.clone()).unwrap();
        let mut states = Vec::new();
        for _ in 0..2 {
            states.push(engine.rollout("m", &initial, 2).unwrap());
        }
        runs.push(states);
    }
    for (req, (a, b)) in runs[0].iter().zip(&runs[1]).enumerate() {
        assert_bitwise(a, b, &format!("replayed chaos run, request {req}"));
    }
}
