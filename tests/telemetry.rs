//! End-to-end tests of the `pde-telemetry` live-metrics subsystem.
//!
//! Three layers are pinned down here:
//!
//! * the **log-linear histogram** against an exact sorted oracle (proptest):
//!   every quantile is within the advertised relative-error bound, and
//!   merging two snapshots is *exactly* the histogram of the union of their
//!   samples;
//! * **concurrency**: N rank threads hammering one registry keep totals
//!   exact (sharded relaxed atomics lose nothing);
//! * the **serving stack**: the std-only exporter answers `/metrics` and
//!   the health endpoints over a real TCP socket, the warm engine's latency
//!   histogram tracks externally measured request latencies, and a dead
//!   peer in a persistent world produces a valid flight-recorder dump.
//!
//! Only one test here drives engine rollouts — the process-global
//! `pdeml_request_latency_us` series must hold exactly that test's
//! requests for its quantile assertions to be meaningful.

use pde_ml_core::prelude::*;
use pde_telemetry::health::{CheckStatus, HealthModel};
use proptest::prelude::*;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// A fresh `&'static` metric name per call: the registry is process-global
/// and append-only, so tests (and every proptest case) register under
/// unique names instead of sharing state. The leak is a test-only cost.
fn unique_name(prefix: &str) -> &'static str {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let id = NEXT.fetch_add(1, Ordering::Relaxed);
    Box::leak(format!("{prefix}_{id}").into_boxed_str())
}

/// Nearest-rank quantile over sorted samples — the same rank rule
/// `HistogramSnapshot::quantile` and the serve-bench percentile use.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[rank]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Histogram quantiles agree with the exact sorted oracle to within
    /// the advertised `max_relative_error` (±1 for integer midpoints).
    #[test]
    fn histogram_quantile_is_within_relative_error_of_oracle(
        samples in prop::collection::vec(0u64..4_000_000, 1..400),
        q_ppm in 0u64..=1_000_000,
    ) {
        let q = q_ppm as f64 / 1e6;
        let h = pde_telemetry::histogram(unique_name("pdeml_test_prop_hist"), "oracle test");
        for &s in &samples {
            h.record(s);
        }
        let mut samples = samples;
        samples.sort_unstable();
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, samples.len() as u64);
        prop_assert_eq!(snap.sum, samples.iter().sum::<u64>());
        let got = snap.quantile(q).expect("non-empty histogram") as f64;
        let exact = oracle_quantile(&samples, q) as f64;
        let tol = snap.max_relative_error() * exact + 1.0;
        prop_assert!(
            (got - exact).abs() <= tol,
            "q={q}: histogram said {got}, oracle {exact}, tolerance {tol}"
        );
    }

    /// `merge(a, b)` equals recording the union of the samples — bucket
    /// for bucket, not merely in aggregate.
    #[test]
    fn merged_snapshots_equal_union_recording(
        a in prop::collection::vec(0u64..1_000_000, 0..200),
        b in prop::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let ha = pde_telemetry::histogram(unique_name("pdeml_test_merge_a"), "merge test");
        let hb = pde_telemetry::histogram(unique_name("pdeml_test_merge_b"), "merge test");
        let hu = pde_telemetry::histogram(unique_name("pdeml_test_merge_u"), "merge test");
        for &s in &a {
            ha.record(s);
            hu.record(s);
        }
        for &s in &b {
            hb.record(s);
            hu.record(s);
        }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        prop_assert_eq!(merged, hu.snapshot());
    }
}

#[test]
fn concurrent_rank_threads_keep_totals_exact() {
    const THREADS: usize = 8;
    const OPS: u64 = 20_000;
    let c = pde_telemetry::counter(unique_name("pdeml_test_conc_counter"), "concurrency test");
    let g = pde_telemetry::gauge(unique_name("pdeml_test_conc_gauge"), "concurrency test");
    let h = pde_telemetry::histogram(unique_name("pdeml_test_conc_hist"), "concurrency test");
    std::thread::scope(|s| {
        for rank in 0..THREADS {
            s.spawn(move || {
                for i in 0..OPS {
                    c.inc(rank);
                    g.add(rank, if i % 2 == 0 { 3 } else { -1 });
                    h.record(i);
                }
            });
        }
    });
    assert_eq!(c.total(), THREADS as u64 * OPS);
    // Ranks below RANK_SHARDS own their shard exclusively: exact per rank.
    for rank in 0..THREADS {
        assert_eq!(c.get(rank), OPS);
    }
    // Per thread: OPS/2 increments of +3 and OPS/2 of -1.
    assert_eq!(g.total(), THREADS as i64 * (OPS as i64 / 2) * 2);
    assert_eq!(h.count(), THREADS as u64 * OPS);
    assert_eq!(h.snapshot().sum, THREADS as u64 * (OPS * (OPS - 1) / 2));
}

fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to exporter");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status = raw.lines().next().unwrap_or("").to_string();
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn exporter_serves_metrics_and_tracks_health_transitions() {
    let name = unique_name("pdeml_test_exporter_total");
    let c = pde_telemetry::counter(name, "exporter e2e test");
    c.add(pde_telemetry::DRIVER, 7);

    let degraded = Arc::new(AtomicBool::new(false));
    let health = Arc::new(HealthModel::new());
    let flag = degraded.clone();
    health.register("fallback_rate", move || {
        if flag.load(Ordering::Acquire) {
            CheckStatus::Degraded("fallback rate over threshold".into())
        } else {
            CheckStatus::Ok
        }
    });
    let mut exporter =
        pde_telemetry::exporter::serve("127.0.0.1:0", health).expect("bind ephemeral port");
    let addr = exporter.local_addr();

    let (status, body) = http_get(addr, "/metrics");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains(&format!("# HELP {name} exporter e2e test")));
    assert!(body.contains(&format!("# TYPE {name} counter")));
    assert!(
        body.contains(&format!("{name} 7")),
        "driver series unlabeled"
    );

    // Counters are monotonic across scrapes.
    c.add(pde_telemetry::DRIVER, 5);
    let (_, body2) = http_get(addr, "/metrics");
    assert!(body2.contains(&format!("{name} 12")));

    let (status, _) = http_get(addr, "/readyz");
    assert!(status.contains("200"));
    degraded.store(true, Ordering::Release);
    let (status, body) = http_get(addr, "/readyz");
    assert!(status.contains("503"), "degraded engine is not ready");
    assert!(body.contains("overall: degraded"));
    let (status, _) = http_get(addr, "/healthz");
    assert!(status.contains("200"), "degraded engine is still live");

    exporter.shutdown();
}

/// The warm engine records every request into the process-global latency
/// histogram; its quantiles must track externally measured wall-clock
/// latencies of the same requests.
#[test]
fn engine_latency_histogram_tracks_measured_requests() {
    const REQUESTS: usize = 24;
    let data = pde_euler::dataset::paper_dataset(16, 8);
    let arch = ArchSpec::tiny();
    let outcome = ParallelTrainer::new(
        arch.clone(),
        PaddingStrategy::ZeroPad,
        TrainConfig::quick_test(),
    )
    .train_view(&data, 6, 4)
    .expect("quick training");
    let inf = ParallelInference::from_outcome(arch, PaddingStrategy::ZeroPad, &outcome);
    let initial = data.snapshot(0).clone();

    let hist = pde_telemetry::histogram(
        "pdeml_request_latency_us",
        "Warm rollout request latency in microseconds",
    );
    let requests_total = pde_telemetry::counter(
        "pdeml_requests_total",
        "Rollout requests served by the warm engine",
    );
    let count_before = hist.count();
    let served_before = requests_total.total();

    let mut engine = InferEngine::new(4);
    engine.register("telemetry", inf).unwrap();
    let mut measured_us = Vec::with_capacity(REQUESTS);
    for _ in 0..REQUESTS {
        let t = std::time::Instant::now();
        engine.rollout("telemetry", &initial, 2).expect("rollout");
        measured_us.push(t.elapsed().as_micros() as u64);
    }

    assert_eq!(hist.count() - count_before, REQUESTS as u64);
    assert_eq!(requests_total.total() - served_before, REQUESTS as u64);

    // No other test in this binary drives rollouts, so the histogram holds
    // exactly these requests and quantiles are comparable.
    assert_eq!(count_before, 0, "latency histogram must start empty");
    let snap = hist.snapshot();
    measured_us.sort_unstable();
    let p50 = snap.quantile(0.5).expect("non-empty");
    let p99 = snap.quantile(0.99).expect("non-empty");
    assert!(p50 > 0 && p50 <= p99, "p50 {p50} vs p99 {p99}");
    // The engine times the request core (inside `rollout_batch`), so its
    // values are bounded by the externally measured wall clock — up to the
    // histogram's bucket-midpoint error.
    let max_measured = *measured_us.last().unwrap();
    let bound = max_measured as f64 * (1.0 + snap.max_relative_error()) + 1.0;
    assert!(
        (p99 as f64) <= bound,
        "histogram p99 {p99} us exceeds measured max {max_measured} us (bound {bound})"
    );
}

/// A dead peer in a 4-rank persistent world: the survivors observe
/// `Disconnected`, the driver's propagated panic classifies as `peer-dead`,
/// and the flight recorder writes a dump that is a valid Chrome-trace
/// envelope plus a metrics snapshot recording the rank panic.
#[test]
fn dead_peer_produces_valid_flight_dump() {
    let dir = std::env::temp_dir().join(format!("pdeml_flight_e2e_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut flight = FlightRecorder::new(&dir).expect("arm flight recorder");

    let mut world = pde_commsim::World::new(4).spawn_persistent();
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        world.run(|mut ctx| {
            if ctx.rank() == 2 {
                panic!("rank 2 simulated hardware failure");
            }
            // Every survivor blocks on the dead rank and observes
            // `Disconnected` (rank 2's comm is dropped on panic).
            let _ = ctx.comm().recv(2, 7);
        })
    }));
    let payload = outcome.expect_err("the rank panic must propagate to the driver");
    assert!(world.is_poisoned());

    // Rank 0's propagated panic mentions the disconnected sender.
    let reason = pde_ml_core::flight::classify_panic(payload.as_ref());
    assert_eq!(reason, "peer-dead");

    let dump = flight.trip(reason).expect("flight dump");
    assert!(dump.trace_path.exists());
    let name = dump.trace_path.file_name().unwrap().to_string_lossy();
    assert!(
        name.starts_with("flight-") && name.contains("peer-dead"),
        "{name}"
    );
    let json = std::fs::read_to_string(&dump.trace_path).unwrap();
    assert!(
        json.contains("\"traceEvents\""),
        "dump is a Chrome-trace envelope"
    );
    let prom = std::fs::read_to_string(&dump.metrics_path).unwrap();
    assert!(
        prom.contains("pdeml_rank_panics_total{rank=\"2\"}"),
        "metrics snapshot records the rank-2 panic:\n{prom}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
