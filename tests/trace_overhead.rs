//! Proof that the tracing instrumentation is free when disabled — and cheap
//! when enabled.
//!
//! The instrumented hot paths (`TrainSession::run_epoch`, per-layer
//! forward/backward, the GEMM driver) now contain `pde_trace` span/instant
//! calls. The acceptance bar: with no trace session active those calls must
//! not allocate and must cost no more than a thread-local read, so the
//! zero-allocation property of `tests/zero_alloc.rs` — and the kernel
//! benchmark numbers — are untouched. With a session active, recording must
//! stay allocation-free once the per-thread ring has warmed up (events are
//! plain `Copy` structs pushed into a preallocated ring).

use pde_domain::GridPartition;
use pde_euler::dataset::paper_dataset;
use pde_ml_core::arch::ArchSpec;
use pde_ml_core::data::SubdomainDataset;
use pde_ml_core::norm::ChannelNorm;
use pde_ml_core::padding::PaddingStrategy;
use pde_ml_core::train::{TrainConfig, TrainSession};
use pde_tensor::perf;

fn session_fixture() -> (
    SubdomainDataset,
    TrainConfig,
    pde_nn::Sequential,
    TrainSession,
) {
    let data = paper_dataset(16, 9);
    let part = GridPartition::new(16, 16, 2, 2);
    let (train, _) = data.chronological_split(7);
    let norm = ChannelNorm::fit(&train);
    let strategy = PaddingStrategy::NeighborPad;
    let arch = ArchSpec::tiny();
    let ds = SubdomainDataset::build(&train, &part, 0, arch.halo(), strategy, &norm);
    let mut cfg = TrainConfig::quick_test();
    cfg.batch_size = 4;
    let net = arch.build_for(strategy, cfg.seed);
    let session = TrainSession::new(&cfg);
    (ds, cfg, net, session)
}

#[test]
fn disabled_tracing_keeps_the_instrumented_epoch_allocation_free() {
    // Identical shape to zero_alloc.rs, run with tracing OFF (no session on
    // this thread): the added span/instant call sites must not reintroduce
    // a single allocation into the steady-state epoch.
    assert!(!pde_trace::enabled(), "test assumes no ambient session");
    let (ds, cfg, mut net, mut session) = session_fixture();

    let warm = session.run_epoch(&mut net, &ds, &cfg, 0);
    assert!(warm.is_finite());

    let before = perf::snapshot();
    let loss = session.run_epoch(&mut net, &ds, &cfg, 1);
    let spent = perf::snapshot().since(&before);

    assert!(loss.is_finite());
    assert!(spent.gemm_calls > 0, "epoch exercised the kernels");
    assert_eq!(
        spent.allocs, 0,
        "with tracing disabled the instrumented epoch performed {} allocations",
        spent.allocs
    );
}

#[test]
fn enabled_tracing_allocates_only_the_ring_not_per_event() {
    // With a session active, the first recorded event allocates the
    // per-thread ring once; after a warm-up epoch, further epochs record
    // thousands of events with zero additional heap allocations.
    let (ds, cfg, mut net, mut session) = session_fixture();
    let handle = pde_trace::begin();

    // Warm-up: grows the training buffers AND the trace ring.
    let _ = session.run_epoch(&mut net, &ds, &cfg, 0);

    let before = perf::snapshot();
    let _ = session.run_epoch(&mut net, &ds, &cfg, 1);
    let spent = perf::snapshot().since(&before);
    assert_eq!(
        spent.allocs, 0,
        "steady-state traced epoch performed {} allocations",
        spent.allocs
    );

    let trace = handle.finish();
    assert!(
        trace.events.len() > 50,
        "the traced epochs should have recorded plenty of events, got {}",
        trace.events.len()
    );
    assert_eq!(trace.total_dropped(), 0, "ring never overflowed");
}

#[test]
fn telemetry_hot_path_is_allocation_free_and_cheap() {
    // Same bar as the tracing fast path, for the live-metrics layer:
    // registration is the only allocating step; after it, a counter `inc`
    // and a histogram `record` are a handful of relaxed fetch_adds. 1M
    // mixed operations must allocate nothing and finish well inside the
    // generous wall-clock bound.
    let c = pde_telemetry::counter("pdeml_test_hot_path_total", "hot-path overhead test");
    let h = pde_telemetry::histogram("pdeml_test_hot_path_us", "hot-path overhead test");
    c.inc(0);
    h.record(1);

    let before = perf::snapshot();
    let t0 = std::time::Instant::now();
    for i in 0..1_000_000u64 {
        c.inc((i % 4) as usize);
        h.record(i & 0xFFFF);
    }
    let spent = perf::snapshot().since(&before);
    let elapsed = t0.elapsed();

    assert_eq!(
        spent.allocs, 0,
        "1M metric updates performed {} allocations",
        spent.allocs
    );
    assert!(
        elapsed < std::time::Duration::from_secs(2),
        "1M metric updates took {elapsed:?} — the hot path is no longer trivial"
    );
    assert_eq!(c.total(), 1_000_001);
    assert_eq!(h.count(), 1_000_001);
}

#[test]
fn disabled_span_cost_is_bounded() {
    // A generous wall-clock bound on the disabled fast path: 1M disarmed
    // span constructions (one thread-local read each, no clock read) must
    // finish in well under a second even on a loaded CI machine. This is a
    // regression tripwire for accidentally moving work ahead of the
    // session check, not a microbenchmark.
    assert!(!pde_trace::enabled());
    let t0 = std::time::Instant::now();
    for i in 0..1_000_000u64 {
        let _s = pde_trace::span_args(pde_trace::Category::Kernel, pde_trace::names::GEMM, i, 0);
    }
    let elapsed = t0.elapsed();
    assert!(
        elapsed < std::time::Duration::from_secs(2),
        "1M disabled spans took {elapsed:?} — the disabled path is no longer trivial"
    );
}
