//! Integration of the measured trainer with the performance model: the
//! Fig.-4 pipeline end to end at test scale.

use pde_euler::dataset::paper_dataset;
use pde_ml_core::prelude::*;
use pde_perfmodel::{strong_scaling, weak_scaling, CostModel, NetworkModel};

/// Calibrates the cost model from real sequential runs and checks the
/// measured-parallel wall time against the model's oversubscribed
/// prediction — the honest core of the scaling reproduction.
#[test]
fn calibrated_model_predicts_real_runs() {
    let arch = ArchSpec::tiny();
    let mut cfg = TrainConfig::quick_test();
    cfg.epochs = 4;
    let epochs = cfg.epochs;

    // Measure at three subdomain sizes.
    let mut samples = Vec::new();
    for side in [16usize, 24, 32] {
        let data = paper_dataset(side, 10);
        let out = SequentialTrainer::new(arch.clone(), PaddingStrategy::ZeroPad, cfg.clone())
            .train(&data, 8)
            .expect("calibration");
        samples.push(((side * side) as f64, out.seconds / epochs as f64));
    }
    let cost = CostModel::calibrate(&samples);
    assert!(cost.rate_s_per_cell > 0.0);

    // Cost must be ~linear: the 32² point should sit near the line through
    // the fit (within 60% — debug-profile timing noise on 1 core is real).
    let predicted = cost.epoch_seconds(32 * 32);
    let measured = samples[2].1;
    assert!(
        (predicted - measured).abs() < 0.6 * measured.max(1e-4),
        "cost model off: predicted {predicted:.4}, measured {measured:.4}"
    );

    // The projected strong-scaling curve with enough cores is near-ideal.
    // (The calibration runs on a busy single-core box; timing noise leaks
    // into the fitted overhead term, so allow a generous margin — the
    // shape statement is "no efficiency cliff", not a 1%-exact fit.)
    //
    // Projected at 128²: with the packed GEMM kernels an epoch over a 64-cell
    // subdomain (64² over P=64) is faster than the fixed per-epoch overhead
    // (shuffle + per-batch bookkeeping), so the smaller grid probes the
    // overhead term, not the scaling shape. 128² keeps per-rank work
    // dominant at P=64 — the regime the paper's scaling study measures.
    let pts = strong_scaling(&cost, 128 * 128, epochs, &[1, 4, 16, 64], 64);
    for p in &pts {
        assert!(
            p.efficiency > 0.6,
            "P={}: efficiency {}",
            p.ranks,
            p.efficiency
        );
    }
    // And monotone decreasing in wall time.
    for w in pts.windows(2) {
        assert!(w[1].seconds < w[0].seconds);
    }

    // Weak scaling is flat with enough cores.
    let weak = weak_scaling(&cost, 16 * 16, epochs, &[1, 8, 64], 64);
    assert!((weak[2].seconds - weak[0].seconds).abs() < 1e-9);
}

/// A real parallel training run never beats the model's single-core bound:
/// P ranks of work w each cannot finish faster than the critical path.
#[test]
fn real_runs_respect_work_conservation() {
    let data = paper_dataset(32, 10);
    let arch = ArchSpec::tiny();
    let cfg = TrainConfig::quick_test();
    let t1 = ParallelTrainer::new(arch.clone(), PaddingStrategy::ZeroPad, cfg.clone())
        .train(&data, 1)
        .expect("P=1")
        .wall_seconds;
    let t4 = ParallelTrainer::new(arch, PaddingStrategy::ZeroPad, cfg)
        .train(&data, 4)
        .expect("P=4")
        .wall_seconds;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores == 1 {
        // On one core the total work is conserved: T(4) cannot be much
        // smaller than T(1) (it can be somewhat smaller because smaller
        // subdomains have better cache behaviour; 3× is a generous floor).
        assert!(
            t4 > t1 / 3.0,
            "1-core work conservation violated: T(1)={t1:.3}s, T(4)={t4:.3}s"
        );
    } else {
        // With real parallel hardware T(4) must improve on T(1).
        assert!(
            t4 < t1,
            "no speedup on {cores}-core host: T(1)={t1:.3}s T(4)={t4:.3}s"
        );
    }
}

/// The communication models order the schemes correctly at any scale.
#[test]
fn model_orders_scheme_above_baseline() {
    let cost = CostModel::new(0.0, 1e-6);
    let slow = NetworkModel::new(1e-4, 1e-8);
    let scheme = strong_scaling(&cost, 65536, 10, &[4, 16, 64], 64);
    let baseline = pde_perfmodel::strong_scaling_baseline(
        &cost,
        &slow,
        65536,
        10,
        6032 * 8,
        |_| 8,
        &[4, 16, 64],
        64,
    );
    for (s, b) in scheme.iter().zip(&baseline) {
        assert!(
            s.efficiency > b.efficiency,
            "P={}: scheme {} vs baseline {}",
            s.ranks,
            s.efficiency,
            b.efficiency
        );
    }
}
