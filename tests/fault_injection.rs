//! Fault-injection tests: what happens to the inference protocol when
//! boundary messages are lost, and how the resilient halo-exchange
//! subsystem degrades.
//!
//! The paper assumes a reliable MPI; these tests exercise the library's
//! loss-tolerant halo layer ([`CartComm::exchange_timeout`] and the
//! [`HaloPolicy`] machinery in `pde-ml-core`). Two invariants matter
//! everywhere: a *lost message* (timeout) is recoverable by policy, while a
//! *dead peer* (`PeerDead`) is fatal under every policy — the distinction
//! the old test-only `pull_with_fallback` helper erased by matching
//! `Err(_)`.
//!
//! All receive timeouts come from [`pde_commsim::test_timeout`]
//! (`PDEML_TEST_TIMEOUT_MS`, default generous): a healthy strip declared
//! lost on a loaded CI runner would make these tests flaky, while a
//! genuinely dropped strip never arrives no matter how long we wait.

use pde_commsim::{test_timeout, CartComm, Direction, FaultAction, FaultPlan, HaloStatus, World};
use pde_ml_core::infer::{assemble_halo_input_degraded, HaloCache};
use pde_ml_core::prelude::*;
use pde_tensor::Tensor3;

/// Builds a trained 4-rank inference fleet for the rollout-policy tests.
fn trained_fleet(n_ranks: usize) -> (pde_euler::DataSet, ParallelInference) {
    let data = pde_euler::dataset::paper_dataset(16, 8);
    let arch = ArchSpec::tiny();
    let outcome = ParallelTrainer::new(
        arch.clone(),
        PaddingStrategy::NeighborPad,
        TrainConfig::quick_test(),
    )
    .train_view(&data, 6, n_ranks)
    .unwrap();
    let inf = ParallelInference::from_outcome(arch, PaddingStrategy::NeighborPad, &outcome);
    (data, inf)
}

#[test]
fn lost_halo_is_reported_lost_not_dead() {
    // 1×2 grid; the 0→1 edge drops everything. Rank 1 must classify its
    // missing strip as Lost (recoverable), NOT PeerDead, and the loss must
    // land in the stats. The healthy 1→0 direction stays Ok.
    let plan = FaultPlan::drop_edge(0, 1);
    let (out, traffic) = World::new(2).with_fault_plan(plan).run_with_stats(|comm| {
        let rank = comm.rank();
        let mut cart = CartComm::new(comm, 1, 2, false);
        let dir = if rank == 0 {
            Direction::Right
        } else {
            Direction::Left
        };
        let mut outgoing: [Option<Vec<f64>>; 4] = [None, None, None, None];
        outgoing[dir.index()] = Some(vec![rank as f64; 6]);
        let incoming = cart.exchange_timeout(outgoing, 7, test_timeout());
        let status = incoming[dir.index()].as_ref().unwrap().status();
        // Keep both ranks alive until both timed receives resolve.
        cart.comm_mut().barrier();
        status
    });
    assert_eq!(out[0], HaloStatus::Ok, "1→0 edge is healthy");
    assert_eq!(out[1], HaloStatus::Lost, "0→1 edge drops — lost, not dead");
    assert_eq!(traffic[1].halos_lost, 1);
    assert_eq!(traffic[0].halos_lost, 0);
}

#[test]
fn dead_peer_is_fatal_under_every_policy() {
    // Rank 0 exits without participating. Even the most permissive policy
    // (Degrade + LastKnown) must refuse to fabricate data for a dead
    // peer's whole subdomain: the degraded assembler panics. Which panic
    // wins is a race — the synchronization barrier sees the closed channel
    // ("disconnected"), or the receive classifies the peer dead first and
    // resolve_halo refuses ("neighbor is dead") — so both are accepted.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        World::new(2).run(|comm| {
            let rank = comm.rank();
            if rank == 0 {
                return Tensor3::zeros(1, 2, 2); // dies immediately
            }
            let mut cart = CartComm::new(comm, 1, 2, false);
            let local = Tensor3::from_fn(1, 4, 4, |_, i, j| (i + j) as f64);
            let mut cache = HaloCache::default();
            assemble_halo_input_degraded(
                &mut cart,
                &local,
                1,
                0,
                test_timeout(),
                HaloFallback::LastKnown,
                false,
                &mut cache,
            )
        });
    }));
    let payload = match outcome {
        Ok(_) => panic!("a dead peer must be fatal"),
        Err(p) => p,
    };
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("disconnected") || msg.contains("neighbor is dead"),
        "unexpected panic message: {msg:?}"
    );
}

#[test]
fn last_known_fallback_reuses_exact_prior_step_strip() {
    // 1×2 grid, two assembly steps. The fault plan drops ONLY step 1's
    // x-phase message on the 0→1 edge (encoded tag >> 2 == step*2 == 2).
    // Under LastKnown, rank 1's step-1 left halo must be bitwise the strip
    // it received at step 0 — not zeros, not step 1's (lost) strip.
    let plan = FaultPlan::new(|s, d, t| {
        if s == 0 && d == 1 && (t >> 2) == 2 {
            FaultAction::Drop
        } else {
            FaultAction::Deliver
        }
    });
    let halo = 2;
    let (out, traffic) = World::new(2)
        .with_fault_plan(plan)
        .run_with_stats(move |comm| {
            let rank = comm.rank();
            let mut cart = CartComm::new(comm, 1, 2, false);
            let mut cache = HaloCache::default();
            let state = |step: usize| {
                Tensor3::from_fn(2, 4, 4, |c, i, j| {
                    (1000 * step + 100 * rank + 10 * c + i + j) as f64 + 0.5
                })
            };
            // A short timeout is safe: the degraded assembler synchronizes
            // between sends and receives, so every delivered strip is
            // already inboxed when the timed receive runs — the timeout is
            // only ever waited out for the genuinely dropped message.
            let timeout = std::time::Duration::from_millis(100);
            let padded: Vec<Tensor3> = (0..2)
                .map(|step| {
                    assemble_halo_input_degraded(
                        &mut cart,
                        &state(step),
                        halo,
                        step as u32,
                        timeout,
                        HaloFallback::LastKnown,
                        false,
                        &mut cache,
                    )
                })
                .collect();
            cart.comm_mut().barrier();
            padded
        });
    // Rank 1's left halo block (rows halo.., cols 0..halo) at step 1 must
    // equal the step-0 block bitwise — the cached strip, reused.
    let step0_left = out[1][0].window(halo, 0, 4, halo);
    let step1_left = out[1][1].window(halo, 0, 4, halo);
    assert!(
        step0_left.as_slice().iter().any(|&v| v != 0.0),
        "step 0 strip arrived (sanity)"
    );
    assert_eq!(
        step0_left.as_slice(),
        step1_left.as_slice(),
        "LastKnown must reuse the prior strip bitwise"
    );
    // And the substitution is accounted as stale, not zero-filled.
    assert_eq!(traffic[1].halos_lost, 1);
    assert_eq!(traffic[1].halos_stale, 1);
    assert_eq!(traffic[1].halos_zero_filled, 0);
}

#[test]
fn degrade_rollout_completes_under_seeded_loss_and_is_deterministic() {
    // A multi-step rollout under seeded ~10% probabilistic loss must (a)
    // complete, (b) report nonzero lost/fallback counts, and (c) produce
    // bitwise-identical states on a second run — the loss pattern is a pure
    // hash of (seed, src, dst, tag), independent of thread scheduling.
    let (data, inf) = trained_fleet(4);
    // Short timeout is safe under the synchronized degraded exchange:
    // delivered strips are inboxed before the timed receive runs, so only
    // the plan-dropped messages ever wait this out.
    let inf = inf
        .with_halo_policy(HaloPolicy::Degrade {
            timeout: std::time::Duration::from_millis(100),
            fallback: HaloFallback::ZeroFill,
        })
        .with_fault_plan(FaultPlan::loss_rate(0.1, 0xFA57));
    let initial = data.snapshot(6).clone();
    let a = inf.rollout(&initial, 3).unwrap();
    let b = inf.rollout(&initial, 3).unwrap();
    assert_eq!(a.states.len(), 4, "rollout completed");
    assert!(
        a.total_halos_lost() > 0,
        "10% seeded loss over 24 halo messages should lose at least one \
         (if this seed loses none, pick another)"
    );
    assert_eq!(a.total_halos_lost(), a.total_fallbacks());
    assert!(a.degraded());
    for (k, (sa, sb)) in a.states.iter().zip(&b.states).enumerate() {
        assert_eq!(
            sa.as_slice(),
            sb.as_slice(),
            "step {k}: degraded rollout must be deterministic"
        );
    }
    assert_eq!(a.traffic, b.traffic, "counters are deterministic too");
}

#[test]
fn dropped_edge_rollout_records_loss_in_traffic_report() {
    // Structural loss: every 0→1 message drops. On the 2×2 grid rank 1
    // loses exactly its from-left strip each step; the rollout still
    // completes and the TrafficReport pins the damage to rank 1.
    let (data, inf) = trained_fleet(4);
    let steps = 2;
    let inf = inf
        .with_halo_policy(HaloPolicy::Degrade {
            timeout: std::time::Duration::from_millis(100),
            fallback: HaloFallback::ZeroFill,
        })
        .with_fault_plan(FaultPlan::drop_edge(0, 1));
    let r = inf.rollout(data.snapshot(0), steps).unwrap();
    assert_eq!(r.n_steps(), steps);
    assert!(r
        .states
        .iter()
        .all(|s| s.as_slice().iter().all(|v| v.is_finite())));
    assert_eq!(r.traffic[1].halos_lost, steps as u64);
    assert_eq!(r.traffic[1].halos_zero_filled, steps as u64);
    assert!(r.traffic[1].degraded());
    for rank in [0, 2, 3] {
        assert!(
            !r.traffic[rank].degraded(),
            "rank {rank} only has healthy edges"
        );
    }
}

#[test]
fn delay_shorter_than_timeout_is_not_a_loss() {
    // A slow link is not a lossy link: a `delay:SRC-DST:MS` fault whose
    // delay is well under the halo timeout must deliver every strip as
    // `HaloStatus::Ok` — no halos_lost, no fallback substitution, and a
    // rollout bitwise identical to the fault-free strict protocol.
    let (data, inf) = trained_fleet(4);
    let initial = data.snapshot(6).clone();
    let strict = inf.rollout(&initial, 2).unwrap();

    // Both transports must treat a slow link the same way: the channel mesh
    // parks the delayed strip on a timer thread, the TCP mesh holds the
    // frame back before writing — either way it arrives, classifies Ok,
    // and the rollout equals the fault-free strict one bitwise.
    for kind in [
        pde_commsim::TransportKind::Channel,
        pde_commsim::TransportKind::Tcp,
    ] {
        let delayed = inf
            .clone()
            .with_halo_policy(HaloPolicy::Degrade {
                timeout: test_timeout(),
                fallback: HaloFallback::ZeroFill,
            })
            .with_transport(kind)
            .with_fault_plan(FaultPlan::delay_edge(
                0,
                1,
                std::time::Duration::from_millis(20),
            ))
            .rollout(&initial, 2)
            .unwrap();

        for t in &delayed.traffic {
            assert_eq!(t.halos_lost, 0, "{kind:?}: delayed must not read as lost");
            assert_eq!(t.halos_zero_filled, 0);
            assert_eq!(t.halos_stale, 0);
            assert!(!t.degraded());
        }
        for (k, (a, b)) in strict.states.iter().zip(&delayed.states).enumerate() {
            assert_eq!(
                a.as_slice(),
                b.as_slice(),
                "{kind:?} step {k}: delayed-but-delivered must equal strict bitwise"
            );
        }
    }
}

#[test]
fn delayed_exchange_strip_arrives_ok_at_the_halo_layer() {
    // Same invariant one layer down: a 1×2 grid where the 0→1 edge is
    // delayed 20 ms. With a generous receive timeout the strip classifies
    // as Ok, carrying the payload intact.
    let plan = FaultPlan::delay_edge(0, 1, std::time::Duration::from_millis(20));
    let (out, traffic) = World::new(2).with_fault_plan(plan).run_with_stats(|comm| {
        let rank = comm.rank();
        let mut cart = CartComm::new(comm, 1, 2, false);
        let dir = if rank == 0 {
            Direction::Right
        } else {
            Direction::Left
        };
        let mut outgoing: [Option<Vec<f64>>; 4] = [None, None, None, None];
        outgoing[dir.index()] = Some(vec![rank as f64 + 0.25; 6]);
        let mut incoming = cart.exchange_timeout(outgoing, 11, test_timeout());
        let got = incoming[dir.index()].take().unwrap();
        let status = got.status();
        let payload = got.into_data();
        cart.comm_mut().barrier();
        (status, payload)
    });
    assert_eq!(out[1].0, HaloStatus::Ok, "delayed strip is Ok, not Lost");
    assert_eq!(out[1].1.as_deref(), Some(&[0.25; 6][..]), "payload intact");
    assert_eq!(out[0].0, HaloStatus::Ok);
    assert_eq!(traffic[0].halos_lost + traffic[1].halos_lost, 0);
}

#[test]
fn healthy_world_with_fault_plan_noise_everywhere_else_is_unaffected() {
    // Dropping an edge that the communication pattern never uses changes
    // nothing.
    let plan = FaultPlan::drop_edge(3, 0);
    let out = World::new(4).with_fault_plan(plan).run(|comm| {
        let mut cart = CartComm::new(comm, 2, 2, false);
        // Full 4-direction exchange on a 2×2 non-periodic grid: only the
        // existing neighbors participate; edge (3,0) is diagonal and unused.
        let me = cart.comm().rank() as f64;
        let mut outgoing: [Option<Vec<f64>>; 4] = [None, None, None, None];
        for (idx, d) in Direction::ALL.iter().enumerate() {
            if cart.neighbor(*d).is_some() {
                outgoing[idx] = Some(vec![me; 2]);
            }
        }
        let incoming = cart.exchange(outgoing, 3);
        incoming.iter().filter(|x| x.is_some()).count()
    });
    // Every rank of a 2×2 grid has exactly 2 neighbors.
    assert_eq!(out, vec![2, 2, 2, 2]);
}

#[test]
fn dropped_message_is_counted_as_sent_but_never_received() {
    let plan = FaultPlan::drop_edge(0, 1);
    let (_, traffic) = World::new(2)
        .with_fault_plan(plan)
        .run_with_stats(|mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 9, vec![1.0, 2.0]);
            } else {
                let r = comm.recv_timeout(0, 9, std::time::Duration::from_millis(30));
                assert!(r.is_err());
            }
            comm.barrier();
        });
    assert_eq!(
        traffic[0].msgs_sent,
        1 + 1,
        "payload + barrier messages sent by rank 0"
    );
    // Rank 1 received only the barrier message, not the payload.
    assert_eq!(traffic[1].msgs_received, 1);
}

#[test]
fn collectives_survive_total_user_traffic_loss() {
    // Even a plan that drops ALL user messages must not break collectives
    // (they use the reserved tag space) — the world still synchronizes and
    // reduces correctly.
    let plan = FaultPlan::new(|_, _, _| FaultAction::Drop);
    let results = World::new(4).with_fault_plan(plan).run(|mut comm| {
        comm.barrier();
        let v = comm.allreduce_sum(&[comm.rank() as f64 + 1.0]);
        v[0]
    });
    assert_eq!(results, vec![10.0; 4]);
}

#[test]
fn seeded_loss_is_identical_over_channel_and_tcp_transports() {
    // Fault decisions hash (seed, src, dst, tag) INSIDE Comm — above the
    // Transport trait — so the same plan must drop the same strips whether
    // the mesh below is in-process channels or localhost TCP sockets. The
    // degraded rollouts must then agree bitwise, with equal TrafficReports
    // (including halos_lost / fallback counters).
    let (data, inf) = trained_fleet(4);
    let plan = FaultPlan::loss_rate(0.25, 0xD1CE);
    let initial = data.snapshot(1).clone();
    let run = |kind: pde_commsim::TransportKind| {
        inf.clone()
            .with_halo_policy(HaloPolicy::Degrade {
                timeout: test_timeout(),
                fallback: HaloFallback::ZeroFill,
            })
            .with_transport(kind)
            .with_fault_plan(plan.clone())
            .rollout(&initial, 3)
            .unwrap()
    };
    let channel = run(pde_commsim::TransportKind::Channel);
    let tcp = run(pde_commsim::TransportKind::Tcp);
    assert!(
        channel.total_halos_lost() > 0,
        "seed must actually lose strips for this test to mean anything"
    );
    for (k, (a, b)) in channel.states.iter().zip(&tcp.states).enumerate() {
        assert_eq!(
            a.as_slice(),
            b.as_slice(),
            "step {k}: seeded-loss rollout must be transport-independent"
        );
    }
    assert_eq!(
        channel.traffic, tcp.traffic,
        "loss pattern and substitutions must match counter-for-counter"
    );
}

#[test]
fn dropped_edge_damage_is_identical_over_channel_and_tcp_transports() {
    // Structural loss over both transports: every 0→1 message drops; the
    // damage report must pin the same loss to the same rank either way.
    let (data, inf) = trained_fleet(4);
    let steps = 2;
    let initial = data.snapshot(0).clone();
    let run = |kind: pde_commsim::TransportKind| {
        inf.clone()
            .with_halo_policy(HaloPolicy::Degrade {
                timeout: test_timeout(),
                fallback: HaloFallback::LastKnown,
            })
            .with_transport(kind)
            .with_fault_plan(FaultPlan::drop_edge(0, 1))
            .rollout(&initial, steps)
            .unwrap()
    };
    let channel = run(pde_commsim::TransportKind::Channel);
    let tcp = run(pde_commsim::TransportKind::Tcp);
    for report in [&channel.traffic, &tcp.traffic] {
        assert_eq!(report[1].halos_lost, steps as u64);
        assert!(report[1].degraded());
        for rank in [0, 2, 3] {
            assert!(!report[rank].degraded(), "rank {rank} has healthy edges");
        }
    }
    assert_eq!(channel.traffic, tcp.traffic);
    for (k, (a, b)) in channel.states.iter().zip(&tcp.states).enumerate() {
        assert_eq!(a.as_slice(), b.as_slice(), "step {k}");
    }
}

#[test]
fn absorbing_and_reflective_boundaries_compose_with_training() {
    // The full pipeline also works on datasets generated with the
    // extension boundary conditions — no hidden Outflow assumptions.
    use pde_euler::dataset::SnapshotRecorder;
    use pde_euler::{Boundary, InitialCondition, SolverConfig};
    for boundary in [
        Boundary::Reflective,
        Boundary::Absorbing,
        Boundary::Periodic,
    ] {
        let cfg = SolverConfig::paper(16, 16);
        let data =
            SnapshotRecorder::new(cfg, boundary, &InitialCondition::paper_pulse(), 1).record(8);
        let outcome = ParallelTrainer::new(
            ArchSpec::tiny(),
            PaddingStrategy::NeighborPad,
            TrainConfig::quick_test(),
        )
        .train(&data, 4)
        .unwrap_or_else(|e| panic!("{boundary:?}: {e}"));
        assert_eq!(outcome.total_bytes_sent(), 0, "{boundary:?}");
        assert!(outcome
            .rank_results
            .iter()
            .all(|r| r.epoch_losses.iter().all(|l| l.is_finite())));
    }
}
