//! Fault-injection tests: what happens to the inference protocol when
//! boundary messages are lost, and how a loss-tolerant variant degrades.
//!
//! The paper assumes a reliable MPI; these tests document the behaviour of
//! the protocol at the communication layer and demonstrate the recommended
//! mitigation (timeout + zero-fill fallback, which degrades the halo to the
//! zero-padding strategy for the affected step only).

use pde_commsim::{CartComm, Direction, FaultPlan, World};
use pde_domain::halo::pack_cols;
use pde_tensor::Tensor3;
use std::time::Duration;

/// A loss-tolerant single-axis halo pull: receive with a timeout and fall
/// back to zeros (the training-time physical-boundary convention).
fn pull_with_fallback(
    cart: &mut CartComm,
    dir_src: usize,
    tag: u32,
    strip_len: usize,
) -> (Vec<f64>, bool) {
    match cart
        .comm_mut()
        .recv_timeout(dir_src, tag, Duration::from_millis(50))
    {
        Ok(buf) => (buf, false),
        Err(_) => (vec![0.0; strip_len], true),
    }
}

#[test]
fn lost_halo_message_times_out_and_zero_fill_recovers() {
    // 1×2 grid; the 0→1 edge drops everything. Rank 1 must detect the loss
    // and proceed with a zero halo instead of deadlocking.
    let plan = FaultPlan::drop_edge(0, 1);
    let out = World::new(2).with_fault_plan(plan).run(|comm| {
        let rank = comm.rank();
        let mut cart = CartComm::new(comm, 1, 2, false);
        let local = Tensor3::from_fn(2, 4, 4, |c, i, j| (rank * 100 + c * 10 + i + j) as f64);
        let halo = 2;
        let strip_len = 2 * 4 * halo;
        if rank == 0 {
            // Sends toward rank 1 (dropped) and receives rank 1's strip.
            let strip = pack_cols(&local, local.w() - halo, halo);
            cart.comm_mut().send(1, 7, strip);
            let (got, lost) = pull_with_fallback(&mut cart, 1, 7, strip_len);
            assert!(!lost, "1→0 edge is healthy");
            assert_eq!(got.len(), strip_len);
            0u32
        } else {
            let strip = pack_cols(&local, 0, halo);
            cart.comm_mut().send(0, 7, strip);
            let (got, lost) = pull_with_fallback(&mut cart, 0, 7, strip_len);
            assert!(lost, "0→1 edge drops; fallback must trigger");
            assert!(got.iter().all(|&v| v == 0.0));
            1u32
        }
    });
    assert_eq!(out, vec![0, 1]);
}

#[test]
fn healthy_world_with_fault_plan_noise_everywhere_else_is_unaffected() {
    // Dropping an edge that the communication pattern never uses changes
    // nothing.
    let plan = FaultPlan::drop_edge(3, 0);
    let out = World::new(4).with_fault_plan(plan).run(|comm| {
        let mut cart = CartComm::new(comm, 2, 2, false);
        // Full 4-direction exchange on a 2×2 non-periodic grid: only the
        // existing neighbors participate; edge (3,0) is diagonal and unused.
        let me = cart.comm().rank() as f64;
        let mut outgoing: [Option<Vec<f64>>; 4] = [None, None, None, None];
        for (idx, d) in Direction::ALL.iter().enumerate() {
            if cart.neighbor(*d).is_some() {
                outgoing[idx] = Some(vec![me; 2]);
            }
        }
        let incoming = cart.exchange(outgoing, 3);
        incoming.iter().filter(|x| x.is_some()).count()
    });
    // Every rank of a 2×2 grid has exactly 2 neighbors.
    assert_eq!(out, vec![2, 2, 2, 2]);
}

#[test]
fn dropped_message_is_counted_as_sent_but_never_received() {
    let plan = FaultPlan::drop_edge(0, 1);
    let (_, traffic) = World::new(2)
        .with_fault_plan(plan)
        .run_with_stats(|mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 9, vec![1.0, 2.0]);
            } else {
                let r = comm.recv_timeout(0, 9, Duration::from_millis(30));
                assert!(r.is_err());
            }
            comm.barrier();
        });
    assert_eq!(
        traffic[0].0,
        1 + 1,
        "payload + barrier messages sent by rank 0"
    );
    // Rank 1 received only the barrier message, not the payload.
    assert_eq!(traffic[1].2, 1);
}

#[test]
fn collectives_survive_total_user_traffic_loss() {
    // Even a plan that drops ALL user messages must not break collectives
    // (they use the reserved tag space) — the world still synchronizes and
    // reduces correctly.
    let plan = FaultPlan::new(|_, _, _| pde_commsim::FaultAction::Drop);
    let results = World::new(4).with_fault_plan(plan).run(|mut comm| {
        comm.barrier();
        let v = comm.allreduce_sum(&[comm.rank() as f64 + 1.0]);
        v[0]
    });
    assert_eq!(results, vec![10.0; 4]);
}

#[test]
fn absorbing_and_reflective_boundaries_compose_with_training() {
    // The full pipeline also works on datasets generated with the
    // extension boundary conditions — no hidden Outflow assumptions.
    use pde_euler::dataset::SnapshotRecorder;
    use pde_euler::{Boundary, InitialCondition, SolverConfig};
    use pde_ml_core::prelude::*;
    for boundary in [
        Boundary::Reflective,
        Boundary::Absorbing,
        Boundary::Periodic,
    ] {
        let cfg = SolverConfig::paper(16, 16);
        let data =
            SnapshotRecorder::new(cfg, boundary, &InitialCondition::paper_pulse(), 1).record(8);
        let outcome = ParallelTrainer::new(
            ArchSpec::tiny(),
            PaddingStrategy::NeighborPad,
            TrainConfig::quick_test(),
        )
        .train(&data, 4)
        .unwrap_or_else(|e| panic!("{boundary:?}: {e}"));
        assert_eq!(outcome.total_bytes_sent(), 0, "{boundary:?}");
        assert!(outcome
            .rank_results
            .iter()
            .all(|r| r.epoch_losses.iter().all(|l| l.is_finite())));
    }
}
