//! Proof that the training hot path is allocation-free after warm-up.
//!
//! `pde-tensor` installs a counting `#[global_allocator]`
//! ([`pde_tensor::perf::CountingAlloc`]), so the assertion below is not a
//! code-review claim but a measurement: after one warm-up epoch has grown
//! every buffer (packed GEMM panels, im2col scratch, ping-pong activation
//! workspace, cached inputs, optimizer moments, batch tensors, epoch
//! order), a full further epoch — forward, loss, backward, gradient
//! clipping, optimizer step, for every mini-batch — performs **zero** heap
//! allocations. The counters are thread-local, so the probe is exact for
//! this test thread regardless of what other tests do in parallel.

use pde_domain::GridPartition;
use pde_euler::dataset::paper_dataset;
use pde_ml_core::arch::ArchSpec;
use pde_ml_core::data::SubdomainDataset;
use pde_ml_core::norm::ChannelNorm;
use pde_ml_core::padding::PaddingStrategy;
use pde_ml_core::prelude::{InferEngine, ParallelInference, ParallelTrainer};
use pde_ml_core::train::{TrainConfig, TrainSession};
use pde_tensor::perf;

#[test]
fn training_epoch_after_warmup_allocates_nothing() {
    let data = paper_dataset(16, 9); // 8 supervised pairs
    let part = GridPartition::new(16, 16, 2, 2);
    let (train, _) = data.chronological_split(7);
    let norm = ChannelNorm::fit(&train);
    let strategy = PaddingStrategy::NeighborPad;
    let arch = ArchSpec::tiny();
    let ds = SubdomainDataset::build(&train, &part, 0, arch.halo(), strategy, &norm);

    let mut cfg = TrainConfig::quick_test();
    // Exercise the clipping branch too: with a tiny max-norm it fires on
    // (essentially) every step.
    cfg.grad_clip = Some(1e-6);
    // 7 samples at batch 4 → a full batch then a ragged 3-sample one, so the
    // shrink-regrow path of the reusable tensors is covered as well.
    cfg.batch_size = 4;

    let mut net = arch.build_for(strategy, cfg.seed);
    let mut session = TrainSession::new(&cfg);

    // Warm-up: grows every buffer on this thread.
    let warm = session.run_epoch(&mut net, &ds, &cfg, 0);
    assert!(warm.is_finite());

    let before = perf::snapshot();
    let loss = session.run_epoch(&mut net, &ds, &cfg, 1);
    let spent = perf::snapshot().since(&before);

    assert!(loss.is_finite());
    assert!(
        spent.gemm_calls > 0,
        "the epoch should have exercised the GEMM kernels"
    );
    assert_eq!(
        spent.allocs, 0,
        "steady-state epoch performed {} heap allocations",
        spent.allocs
    );
}

/// The same property holds across several epochs and with shuffling off —
/// the order buffer and batch tensors are stable, not just lucky.
#[test]
fn many_epochs_stay_allocation_free() {
    let data = paper_dataset(16, 9);
    let part = GridPartition::new(16, 16, 2, 2);
    let (train, _) = data.chronological_split(7);
    let norm = ChannelNorm::fit(&train);
    let strategy = PaddingStrategy::ZeroPad;
    let arch = ArchSpec::tiny();
    let ds = SubdomainDataset::build(&train, &part, 3, arch.halo(), strategy, &norm);

    let mut cfg = TrainConfig::quick_test();
    cfg.shuffle = false;
    cfg.batch_size = 2;
    let mut net = arch.build_for(strategy, cfg.seed);
    let mut session = TrainSession::new(&cfg);
    let _ = session.run_epoch(&mut net, &ds, &cfg, 0);

    let before = perf::snapshot();
    for epoch in 1..5 {
        let _ = session.run_epoch(&mut net, &ds, &cfg, epoch);
    }
    let spent = perf::snapshot().since(&before);
    assert_eq!(
        spent.allocs, 0,
        "epochs 1..5 performed {} heap allocations",
        spent.allocs
    );
}

/// The threaded kernel path stays allocation-free on the submitting thread
/// once warm: publishing a job to the worker pool is a pointer store plus a
/// condvar signal, chunk claiming is an atomic fetch-add, and the packed-B
/// scratch each executing thread uses is thread-local and grown during
/// warm-up. The allocation counters are thread-local, so this measures the
/// driver thread exactly; worker-side scratch is covered by the warm-up
/// pass touching every worker once (chunks outnumber threads).
#[test]
fn threaded_gemm_steady_state_allocates_nothing_on_driver() {
    let (s, m, k, n) = (8, 16, 150, 320); // n > NC: column chunks too
    let a = vec![0.5; m * k];
    let b_all = vec![0.25; s * k * n];
    let mut c_all = vec![0.0; s * m * n];

    pde_tensor::pool::set_thread_budget(3);
    // Warm-up: spawns the pool, grows packed-A/B scratch on every thread
    // (8 sample chunks over 3 threads → each worker packs at least once).
    for _ in 0..2 {
        pde_tensor::gemm_batch(s, m, k, n, &a, &b_all, &mut c_all);
    }

    let before = perf::snapshot();
    for _ in 0..3 {
        pde_tensor::gemm_batch(s, m, k, n, &a, &b_all, &mut c_all);
        // Single-sample wide-n form: the intra-sample column-chunk path.
        pde_tensor::gemm(m, k, n, &a, &b_all[..k * n], &mut c_all[..m * n]);
    }
    let spent = perf::snapshot().since(&before);
    pde_tensor::pool::set_thread_budget(1);

    assert!(spent.gemm_calls >= 6, "the loop should have hit the driver");
    assert_eq!(
        spent.allocs, 0,
        "threaded steady-state GEMM performed {} driver-side heap allocations",
        spent.allocs
    );
}

/// The serving analogue: once a warm-up request has grown every resident
/// buffer (the engine's per-rank networks, window rings, input/output
/// scratch and trajectory buffers), a further warm engine request performs
/// zero heap allocations on every rank thread. Measured through
/// `RolloutResult::rank_perf`, whose counters are the same thread-local
/// probe the training assertions use — the window covers the whole request
/// loop (reset, input assembly, forward passes, ring rotation), with only
/// the result hand-off to the driver outside it. Zero-padding is the
/// communication-free configuration, so no send buffers muddy the claim.
#[test]
fn second_warm_engine_request_allocates_nothing_on_rank_threads() {
    let data = paper_dataset(16, 8);
    let arch = ArchSpec::tiny();
    let outcome = ParallelTrainer::new(
        arch.clone(),
        PaddingStrategy::ZeroPad,
        TrainConfig::quick_test(),
    )
    .train(&data, 4)
    .unwrap();
    let inf = ParallelInference::from_outcome(arch, PaddingStrategy::ZeroPad, &outcome);
    let mut engine = InferEngine::new(4);
    engine.register("m", inf).unwrap();

    // Warm-up: grows every rank-resident buffer.
    let warm_up = engine.rollout("m", data.snapshot(0), 3).unwrap();
    assert!(
        warm_up.rank_perf.iter().all(|p| p.gemm_calls > 0),
        "the request should have exercised the GEMM kernels"
    );

    for request in 1..4 {
        let r = engine.rollout("m", data.snapshot(0), 3).unwrap();
        for (rank, p) in r.rank_perf.iter().enumerate() {
            assert!(p.gemm_calls > 0, "request {request} rank {rank} did work");
            assert_eq!(
                p.allocs, 0,
                "request {request} rank {rank} performed {} heap allocations steady-state",
                p.allocs
            );
        }
    }
}
