//! Ablation claims from §II of the paper, checked statistically at test
//! scale: ADAM converges best (X3) and MAPE handles the multi-magnitude
//! fields better than MSE (X4).

use pde_euler::dataset::paper_dataset;
use pde_ml_core::data::{extract_input, extract_target, SubdomainDataset};
use pde_ml_core::metrics::field_errors;
use pde_ml_core::prelude::*;
use pde_ml_core::train::{train_network, LossKind, OptimizerKind, TrainConfig};
use pde_nn::Layer;
use pde_tensor::Tensor4;

fn fixture() -> (pde_euler::DataSet, GridPartition, ArchSpec) {
    (
        paper_dataset(32, 24),
        GridPartition::for_ranks(32, 32, 4),
        ArchSpec::tiny(),
    )
}

fn train_with(cfg: &TrainConfig, epochs: usize) -> f64 {
    let (data, part, arch) = fixture();
    let view = data.view(0, 20);
    let ds = SubdomainDataset::build(
        &view,
        &part,
        0,
        arch.halo(),
        PaddingStrategy::ZeroPad,
        &pde_ml_core::norm::ChannelNorm::fit(&view),
    );
    let mut cfg = cfg.clone();
    cfg.epochs = epochs;
    let mut net = arch.build(true, cfg.seed);
    let losses = train_network(&mut net, &ds, &cfg);
    *losses.last().unwrap()
}

#[test]
fn adam_converges_better_than_plain_sgd() {
    // §II: "we found the ADAM optimizer to have the best performance".
    // With a shared epoch budget and the rates each method tolerates,
    // ADAM's final loss must beat plain SGD's clearly.
    let mut adam = TrainConfig::paper();
    adam.optimizer = OptimizerKind::Adam;
    let mut sgd = TrainConfig::paper();
    sgd.optimizer = OptimizerKind::Sgd;
    // MAPE gradients are O(100); SGD needs a tiny rate to stay stable at
    // all — exactly the brittleness that motivates ADAM.
    sgd.lr = 1e-5;
    let adam_loss = train_with(&adam, 12);
    let sgd_loss = train_with(&sgd, 12);
    assert!(
        adam_loss < 0.7 * sgd_loss,
        "Adam ({adam_loss:.2}) should clearly beat plain SGD ({sgd_loss:.2})"
    );
}

#[test]
fn momentum_learns_stably_at_reduced_rate() {
    // Eq. (3) of the paper motivates momentum as a convergence aid. On the
    // MAPE landscape (piecewise-constant gradient magnitudes) its benefit
    // over plain SGD is configuration-dependent, so the robust check is
    // that momentum training monotonically improves over its own start and
    // stays finite at the rate it tolerates.
    let (data, part, arch) = fixture();
    let view = data.view(0, 20);
    let ds = SubdomainDataset::build(
        &view,
        &part,
        0,
        arch.halo(),
        PaddingStrategy::ZeroPad,
        &pde_ml_core::norm::ChannelNorm::fit(&view),
    );
    // Score on MSE: its smooth gradients isolate the optimizer's behaviour
    // from the MAPE kinks (the MAPE-specific difficulty is exactly what the
    // Adam-vs-SGD test above demonstrates).
    let mut cfg = TrainConfig::paper();
    cfg.optimizer = OptimizerKind::SgdMomentum(0.9);
    cfg.loss = LossKind::Mse;
    cfg.lr = 1e-4;
    cfg.epochs = 12;
    let mut net = arch.build(true, cfg.seed);
    let losses = train_network(&mut net, &ds, &cfg);
    assert!(
        losses.iter().all(|l| l.is_finite()),
        "momentum diverged: {losses:?}"
    );
    assert!(
        losses.last().unwrap() < &losses[0],
        "momentum did not learn: {losses:?}"
    );
}

#[test]
fn mape_training_balances_small_magnitude_fields_better_than_mse() {
    // §II: MSE "penalizes deviations on the larger data points much more";
    // MAPE is scale-aware. The Euler fields differ by orders of magnitude
    // (pressure O(1e-1), velocities O(1e-4) early on), so training with
    // MAPE must yield a *more balanced* per-field relative error than MSE:
    // the ratio worst-field/best-field MAPE should be smaller.
    // Deliberately *disable* channel normalization here: the paper's claim
    // is about raw multi-magnitude data, so train in raw space.
    let (data, part, arch) = fixture();
    let view = data.view(0, 20);
    let strategy = PaddingStrategy::ZeroPad;
    let ds = SubdomainDataset::build(
        &view,
        &part,
        0,
        arch.halo(),
        strategy,
        &pde_ml_core::norm::ChannelNorm::identity(4),
    );
    let (vx, vy) = data.pair(21);
    let block = part.block_of_rank(0);
    let val_in = extract_input(vx, &block, 0, strategy.boundary_pad_mode());
    let val_tgt = extract_target(vy, &block, 0);

    let eval = |loss: LossKind| -> Vec<f64> {
        let mut cfg = TrainConfig::paper();
        cfg.loss = loss;
        cfg.epochs = 15;
        let mut net = arch.build(true, cfg.seed);
        let _ = train_network(&mut net, &ds, &cfg);
        let pred = net
            .forward(&Tensor4::from_sample(&val_in), false)
            .sample_tensor(0);
        field_errors(&pred, &val_tgt, 1e-3)
            .iter()
            .map(|e| e.mape)
            .collect()
    };

    let mape_errs = eval(LossKind::Mape { floor: 1e-3 });
    let mse_errs = eval(LossKind::Mse);
    // MAPE-trained nets must achieve lower *relative* error both on the
    // worst field and on average — MSE spends its capacity on the
    // large-magnitude pressure channel and under-fits the tiny velocities.
    let mean = |e: &[f64]| e.iter().sum::<f64>() / e.len() as f64;
    let worst = |e: &[f64]| e.iter().cloned().fold(f64::MIN, f64::max);
    assert!(
        mean(&mape_errs) < mean(&mse_errs),
        "mean relative error: MAPE-trained {mape_errs:?} vs MSE-trained {mse_errs:?}"
    );
    assert!(
        worst(&mape_errs) < worst(&mse_errs),
        "worst-field relative error: MAPE-trained {mape_errs:?} vs MSE-trained {mse_errs:?}"
    );
}

#[test]
fn all_optimizers_remain_finite_on_the_real_task() {
    for opt in [
        OptimizerKind::Adam,
        OptimizerKind::SgdMomentum(0.9),
        OptimizerKind::RmsProp,
    ] {
        let mut cfg = TrainConfig::paper();
        cfg.optimizer = opt;
        if !matches!(opt, OptimizerKind::Adam | OptimizerKind::RmsProp) {
            cfg.lr = 1e-5;
        }
        let loss = train_with(&cfg, 4);
        assert!(loss.is_finite(), "{:?} diverged", opt.label());
    }
}
