//! End-to-end integration: solver → decomposition → parallel training →
//! parallel inference, at test scale.

use pde_euler::dataset::paper_dataset;
use pde_ml_core::metrics::{field_errors, mean_rmse};
use pde_ml_core::prelude::*;

fn train_pipeline(
    grid: usize,
    snapshots: usize,
    epochs: usize,
    ranks: usize,
    strategy: PaddingStrategy,
) -> (pde_euler::DataSet, usize, TrainOutcome) {
    let data = paper_dataset(grid, snapshots);
    let n_train = snapshots * 2 / 3;
    let arch = ArchSpec::tiny();
    let mut cfg = TrainConfig::paper_residual();
    cfg.epochs = epochs;
    cfg.batch_size = 8;
    let outcome = ParallelTrainer::new(arch, strategy, cfg)
        .train_view(&data, n_train, ranks)
        .expect("training");
    (data, n_train, outcome)
}

#[test]
fn full_pipeline_neighbor_pad() {
    let (data, n_train, outcome) = train_pipeline(32, 45, 60, 4, PaddingStrategy::NeighborPad);

    // Training was communication-free.
    assert_eq!(outcome.total_bytes_sent(), 0);
    // Loss decreased on every rank.
    for r in &outcome.rank_results {
        assert!(
            r.epoch_losses.last().unwrap() < &r.epoch_losses[0],
            "rank {} did not learn: {:?}",
            r.rank,
            r.epoch_losses
        );
    }

    // Single-step prediction on a validation pair: strong correlation and
    // bounded error on the pressure field, and within an order of magnitude
    // of the persistence floor. (Outright beating persistence at one
    // CFL-limited step needs paper-scale training budgets; EXPERIMENTS.md
    // reports both regimes.)
    let inf =
        ParallelInference::from_outcome(ArchSpec::tiny(), PaddingStrategy::NeighborPad, &outcome);
    let (x, y) = data.view(n_train, data.pair_count() - n_train).pair(0);
    let pred = inf.rollout(x, 1).unwrap();
    let model = field_errors(&pred.states[1], y, 1e-3);
    let persistence = field_errors(x, y, 1e-3);
    assert!(
        model[0].rmse < 5.0 * persistence[0].rmse,
        "pressure: model ({:.3e}) should be within 5x of persistence ({:.3e})",
        model[0].rmse,
        persistence[0].rmse
    );
    let _ = mean_rmse(x, y);

    // Per-field errors are finite and correlation is positive for the
    // pressure field (the pulse carrier).
    let errs = field_errors(&pred.states[1], y, 1e-3);
    assert_eq!(errs.len(), 4);
    assert!(errs
        .iter()
        .all(|e| e.rmse.is_finite() && e.mape.is_finite()));
    assert!(
        errs[0].pearson > 0.9,
        "pressure correlation too low: {}",
        errs[0].pearson
    );
}

#[test]
fn full_pipeline_zero_pad_is_fully_communication_free() {
    let (data, n_train, outcome) = train_pipeline(32, 30, 10, 4, PaddingStrategy::ZeroPad);
    assert_eq!(outcome.total_bytes_sent(), 0);
    let inf = ParallelInference::from_outcome(ArchSpec::tiny(), PaddingStrategy::ZeroPad, &outcome);
    let (x, _) = data.view(n_train, data.pair_count() - n_train).pair(0);
    let r = inf.rollout(x, 5).unwrap();
    // Zero-pad needs no halo exchange at inference either.
    assert_eq!(r.total_bytes(), 0);
    assert_eq!(r.states.len(), 6);
}

#[test]
fn inner_crop_trains_but_cannot_roll_out() {
    let (_, _, outcome) = train_pipeline(32, 30, 5, 4, PaddingStrategy::InnerCrop);
    assert_eq!(outcome.total_bytes_sent(), 0);
    assert!(outcome
        .rank_results
        .iter()
        .all(|r| r.epoch_losses.iter().all(|l| l.is_finite())));
    // Rollout construction must refuse (§III: inner data points limit
    // usability as simulation substitute).
    let caught = std::panic::catch_unwind(|| {
        ParallelInference::from_outcome(ArchSpec::tiny(), PaddingStrategy::InnerCrop, &outcome)
    });
    assert!(caught.is_err());
}

#[test]
fn rank_counts_from_1_to_16_all_work() {
    let data = paper_dataset(32, 12);
    let arch = ArchSpec::tiny();
    let cfg = TrainConfig::quick_test();
    for ranks in [1usize, 2, 4, 8, 16] {
        let outcome = ParallelTrainer::new(arch.clone(), PaddingStrategy::NeighborPad, cfg.clone())
            .train(&data, ranks)
            .unwrap_or_else(|e| panic!("P={ranks}: {e}"));
        assert_eq!(outcome.rank_results.len(), ranks);
        assert_eq!(outcome.total_bytes_sent(), 0);
        // Per-rank shard sizes shrink with P (strong scaling's work side).
        let block = outcome.partition.block_of_rank(0);
        assert_eq!(block.area(), 32 * 32 / ranks);
    }
}

#[test]
fn trained_networks_are_subdomain_specific() {
    // Different subdomains see different dynamics → different weights.
    let (_, _, outcome) = train_pipeline(32, 20, 5, 4, PaddingStrategy::NeighborPad);
    let w0 = &outcome.rank_results[0].weights;
    let w3 = &outcome.rank_results[3].weights;
    assert_ne!(w0, w3, "distinct subdomain networks should diverge");
}

#[test]
fn deconv_strategy_trains_and_rolls_out_comm_free() {
    // The paper's §III "approach 4" — de-convolution — implemented: valid
    // convs shrink, a learned transpose conv restores the extent, so both
    // training and rollout stay fully communication-free.
    let (data, n_train, outcome) = train_pipeline(32, 30, 10, 4, PaddingStrategy::Deconv);
    assert_eq!(outcome.total_bytes_sent(), 0);
    for r in &outcome.rank_results {
        assert!(
            r.epoch_losses.last().unwrap() < &r.epoch_losses[0],
            "rank {} did not learn under deconv: {:?}",
            r.rank,
            r.epoch_losses
        );
    }
    let inf = ParallelInference::from_outcome(ArchSpec::tiny(), PaddingStrategy::Deconv, &outcome);
    let (x, y) = data.view(n_train, data.pair_count() - n_train).pair(0);
    let r = inf.rollout(x, 3).unwrap();
    assert_eq!(
        r.total_bytes(),
        0,
        "deconv inference needs no halo exchange"
    );
    assert_eq!(r.states.len(), 4);
    let errs = field_errors(&r.states[1], y, 1e-3);
    assert!(errs.iter().all(|e| e.rmse.is_finite()));
    // The up-sampling layer's weights are part of the snapshot.
    assert_eq!(
        outcome.rank_results[0].weights.len(),
        ArchSpec::tiny().param_count_for(PaddingStrategy::Deconv)
    );
}

#[test]
fn gradient_clipping_keeps_training_stable_at_high_rate() {
    // grad_clip lets an otherwise-divergent configuration (large LR on the
    // spiky MAPE landscape) stay finite — and the clipped run must actually
    // clip (different trajectory from the unclipped one).
    let data = paper_dataset(16, 10);
    let arch = ArchSpec::tiny();
    let run = |clip: Option<f64>| {
        let mut cfg = TrainConfig::quick_test();
        cfg.epochs = 6;
        cfg.lr = 0.05;
        cfg.grad_clip = clip;
        ParallelTrainer::new(arch.clone(), PaddingStrategy::ZeroPad, cfg)
            .train(&data, 1)
            .expect("training")
    };
    let clipped = run(Some(1.0));
    let unclipped = run(None);
    assert!(
        clipped.rank_results[0]
            .epoch_losses
            .iter()
            .all(|l| l.is_finite()),
        "clipped run diverged: {:?}",
        clipped.rank_results[0].epoch_losses
    );
    assert_ne!(
        clipped.rank_results[0].weights, unclipped.rank_results[0].weights,
        "clip threshold was never hit — the test exercises nothing"
    );
}

#[test]
fn trace_and_runtime_byte_accounting_agree_per_rank() {
    // Satellite invariant: the byte counts reconstructed purely from `send`
    // events in the trace must equal the runtime's own `CommStats`-derived
    // accounting (`TrainOutcome::total_bytes_sent`, `TrafficReport`) —
    // rank by rank, not just in aggregate. A lossless capture is a
    // precondition (dropped events would silently undercount).
    let data = paper_dataset(16, 8);
    let arch = ArchSpec::tiny();

    // Training: both sides must agree on exactly zero.
    let handle = pde_trace::begin();
    let outcome = ParallelTrainer::new(
        arch.clone(),
        PaddingStrategy::NeighborPad,
        TrainConfig::quick_test(),
    )
    .train_view(&data, 6, 4)
    .expect("training");
    let trace = handle.finish();
    assert_eq!(trace.total_dropped(), 0, "training trace lost events");
    let rows = pde_ml_core::observe::train_metrics(&trace, &outcome);
    for r in &outcome.rank_results {
        let m = rows
            .iter()
            .find(|m| m.rank == r.rank as u32)
            .expect("a metrics row per rank");
        assert_eq!(
            m.traced_bytes_sent, r.bytes_sent,
            "rank {}: trace vs TrainOutcome bytes during training",
            r.rank
        );
        assert_eq!(m.traced_bytes_sent, 0, "training must stay silent");
    }
    assert_eq!(outcome.total_bytes_sent(), 0);

    // Rollout: non-trivial traffic, still equal per rank and in total.
    let inf = ParallelInference::from_outcome(arch, PaddingStrategy::NeighborPad, &outcome);
    let handle = pde_trace::begin();
    let rollout = inf.rollout(data.snapshot(6), 3).unwrap();
    let trace = handle.finish();
    assert_eq!(trace.total_dropped(), 0, "rollout trace lost events");
    let rows = pde_ml_core::observe::rollout_metrics(&trace, &rollout);
    let mut traced_total = 0u64;
    for (rank, t) in rollout.traffic.iter().enumerate() {
        assert!(t.bytes_sent > 0, "rank {rank} should exchange halos");
        let m = rows
            .iter()
            .find(|m| m.rank == rank as u32)
            .expect("a metrics row per rank");
        assert_eq!(
            m.traced_bytes_sent, t.bytes_sent,
            "rank {rank}: trace vs TrafficReport bytes during rollout"
        );
        assert_eq!(
            m.traced_sends, t.msgs_sent,
            "rank {rank}: trace vs TrafficReport message count"
        );
        traced_total += m.traced_bytes_sent;
    }
    assert_eq!(traced_total, rollout.total_bytes());
}

#[test]
fn windowed_training_uses_history() {
    // A window-2 model must differ from a window-1 model on the same data
    // (the extra channels are real inputs, not ignored), and it must train.
    let data = paper_dataset(32, 16);
    let mut arch2 = ArchSpec::tiny();
    arch2.channels[0] = 8;
    let mut cfg = TrainConfig::paper_residual();
    cfg.epochs = 5;
    cfg.batch_size = 4;
    cfg.window = 2;
    let out = ParallelTrainer::new(arch2.clone(), PaddingStrategy::NeighborPad, cfg)
        .train(&data, 4)
        .expect("windowed training");
    for r in &out.rank_results {
        assert!(r.epoch_losses.iter().all(|l| l.is_finite()));
        assert!(
            r.epoch_losses.last().unwrap() < &r.epoch_losses[0],
            "rank {} did not learn with window 2: {:?}",
            r.rank,
            r.epoch_losses
        );
    }
    // Window mismatch must be a clean error, not a shape panic in a thread.
    let mut bad_cfg = TrainConfig::quick_test();
    bad_cfg.window = 2;
    let err = ParallelTrainer::new(ArchSpec::tiny(), PaddingStrategy::ZeroPad, bad_cfg)
        .train(&data, 4)
        .unwrap_err();
    assert!(format!("{err}").contains("channels"), "got: {err}");
}
