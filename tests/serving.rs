//! Concurrent-serving invariants: the scheduler's LRU residency against a
//! naive reference model, and the sub-world equivalence guarantee — N
//! requests fanned out over split sub-worlds are bitwise what a serial
//! full-world engine serves, on both transports.

use pde_commsim::{TransportKind, World};
use pde_ml_core::arch::ArchSpec;
use pde_ml_core::prelude::*;
use pde_ml_core::schedule::Residency;
use proptest::prelude::*;

/// Model-name universe for residency interleavings.
const NAMES: [&str; 5] = ["alpha", "beta", "gamma", "delta", "epsilon"];

/// Naive reference: resident models in LRU order (front = least recently
/// used) with their pending/in-flight counts — the transparently-correct
/// spelling of the eviction rule the scheduler relies on.
#[derive(Default)]
struct NaiveLru {
    entries: Vec<(String, usize)>,
}

impl NaiveLru {
    fn position(&self, name: &str) -> Option<usize> {
        self.entries.iter().position(|(n, _)| n == name)
    }

    /// `Ok(victim)` mirrors [`Residency::admit`]: evict the oldest idle
    /// entry when at `cap`, never a busy one; `Err` when all are busy.
    fn admit(&mut self, name: &str, cap: usize) -> Result<Option<String>, ()> {
        if let Some(i) = self.position(name) {
            let e = self.entries.remove(i);
            self.entries.push(e);
            return Ok(None);
        }
        let mut victim = None;
        if self.entries.len() >= cap {
            let i = self.entries.iter().position(|(_, busy)| *busy == 0);
            match i {
                Some(i) => victim = Some(self.entries.remove(i).0),
                None => return Err(()),
            }
        }
        self.entries.push((name.to_string(), 0));
        Ok(victim)
    }

    fn begin(&mut self, name: &str) {
        let i = self.position(name).expect("begin on resident");
        self.entries[i].1 += 1;
    }

    fn finish(&mut self, name: &str) {
        let i = self.position(name).expect("finish on resident");
        self.entries[i].1 -= 1;
        let e = self.entries.remove(i);
        self.entries.push(e);
    }

    fn busy(&self, name: &str) -> usize {
        self.position(name).map_or(0, |i| self.entries[i].1)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random register/rollout interleavings: the scheduler's residency
    /// bookkeeping stays in lockstep with the naive reference — same
    /// resident set, same LRU order, same eviction victims, same
    /// ResidencyFull refusals — and an eviction victim NEVER has a request
    /// pending or in flight.
    #[test]
    fn lru_residency_matches_naive_model_and_never_evicts_inflight(
        cap in 1usize..4,
        ops in prop::collection::vec((0u8..3, 0usize..NAMES.len()), 1..120),
    ) {
        let mut real = Residency::new(cap);
        let mut naive = NaiveLru::default();
        for (op, idx) in ops {
            let name = NAMES[idx];
            match op {
                // Register: a rollout submission also lands here via
                // touch-on-admit, so this covers both entry points.
                0 => {
                    let want = naive.admit(name, cap);
                    let got = real.admit(name);
                    match (&want, &got) {
                        (Ok(w), Ok(g)) => {
                            prop_assert_eq!(w, g, "eviction victims diverged");
                            if let Some(victim) = g {
                                prop_assert_eq!(
                                    naive.busy(victim), 0,
                                    "evicted '{}' while it had work in flight", victim
                                );
                            }
                        }
                        (Err(()), Err(EngineError::ResidencyFull { model, cap: c })) => {
                            prop_assert_eq!(model.as_str(), name);
                            prop_assert_eq!(*c, cap);
                        }
                        _ => prop_assert!(false, "admit('{}') diverged: naive {:?} vs real {:?}",
                                          name, want.is_ok(), got.is_ok()),
                    }
                }
                // Request admitted for a resident model.
                1 if real.is_resident(name) => {
                    naive.begin(name);
                    real.begin(name);
                }
                // Request completed.
                2 if real.busy_count(name) > 0 => {
                    naive.finish(name);
                    real.finish(name);
                }
                _ => {}
            }
            // Full-state lockstep after every operation.
            let naive_order: Vec<&str> =
                naive.entries.iter().map(|(n, _)| n.as_str()).collect();
            let real_order: Vec<&str> =
                real.order().iter().map(|s| s.as_str()).collect();
            prop_assert_eq!(naive_order, real_order, "LRU order diverged");
            for n in NAMES {
                prop_assert_eq!(real.busy_count(n), naive.busy(n), "busy count for '{}'", n);
            }
        }
    }
}

/// Trains the deterministic 2-rank fixture both sides of the equivalence
/// serve.
fn trained_fixture() -> (pde_euler::DataSet, ParallelInference) {
    let data = pde_euler::dataset::paper_dataset(16, 8);
    let arch = ArchSpec::tiny();
    let outcome = ParallelTrainer::new(
        arch.clone(),
        PaddingStrategy::NeighborPad,
        TrainConfig::quick_test(),
    )
    .train_view(&data, 6, 2)
    .unwrap();
    (
        data,
        ParallelInference::from_outcome(arch, PaddingStrategy::NeighborPad, &outcome),
    )
}

/// N requests over 2 sub-worlds must be bitwise what the same N produce on
/// a serial full-size world: same states, same per-rank traffic counters.
/// Sub-worlds renumber their comm ranks 0..g, so each request is
/// literally a serial 2-rank serve — this pins that nothing about the
/// scheduler or the split leaks into the numerics.
fn assert_scheduler_matches_serial(transport: TransportKind) {
    let (data, inf) = trained_fixture();
    let mut serial = InferEngine::with_config(EngineConfig::new(2).with_transport(transport));
    serial.register("m", inf.clone()).unwrap();
    let want: Vec<RolloutResult> = (0..8)
        .map(|k| serial.rollout("m", data.snapshot(k), 3).unwrap())
        .collect();

    let engines: Vec<InferEngine> = World::new(4)
        .with_transport(transport)
        .split_even(2)
        .unwrap()
        .into_iter()
        .map(|sub| InferEngine::from_world(sub, EngineConfig::new(2)))
        .collect();
    let sched = Scheduler::new(engines, SchedulerConfig::default());
    sched.register("m", inf).unwrap();
    // All 8 submitted before any is awaited: genuinely concurrent over the
    // two sub-worlds, whichever dispatcher grabs each one.
    let tickets: Vec<Ticket> = (0..8)
        .map(|k| {
            sched
                .submit("m", std::slice::from_ref(data.snapshot(k)), 3)
                .unwrap()
        })
        .collect();
    for (k, ticket) in tickets.into_iter().enumerate() {
        let got = ticket.wait().unwrap();
        for (s, (a, b)) in got.states.iter().zip(&want[k].states).enumerate() {
            let identical = a
                .as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(
                identical,
                "request {k} step {s}: sub-world serve diverges bitwise from serial \
                 ({} transport)",
                transport.label()
            );
        }
        assert_eq!(
            got.traffic,
            want[k].traffic,
            "request {k}: per-rank traffic counters diverged ({} transport)",
            transport.label()
        );
    }
}

#[test]
fn requests_over_two_sub_worlds_match_serial_bitwise_channel() {
    assert_scheduler_matches_serial(TransportKind::parse("channel").unwrap());
}

#[test]
fn requests_over_two_sub_worlds_match_serial_bitwise_tcp() {
    assert_scheduler_matches_serial(TransportKind::parse("tcp").unwrap());
}
