//! Accuracy-focused integration tests (the Fig.-3 claims at test scale):
//! single-step agreement with the solver and the §IV-B accumulative-error
//! effect under rollout.

use pde_euler::dataset::paper_dataset;
use pde_ml_core::metrics::{field_errors, rollout_error_curve};
use pde_ml_core::prelude::*;
use pde_ml_core::train::PredictionMode;

fn trained_setup() -> (pde_euler::DataSet, usize, ParallelInference) {
    let grid = 32;
    let snapshots = 48;
    let n_train = 32;
    let data = paper_dataset(grid, snapshots);
    let arch = ArchSpec::tiny();
    let mut cfg = TrainConfig::paper_residual();
    cfg.epochs = 60;
    cfg.batch_size = 8;
    let outcome = ParallelTrainer::new(arch.clone(), PaddingStrategy::NeighborPad, cfg)
        .train_view(&data, n_train, 4)
        .expect("training");
    let inf = ParallelInference::from_outcome(arch, PaddingStrategy::NeighborPad, &outcome);
    (data, n_train, inf)
}

#[test]
fn single_step_prediction_agrees_with_solver() {
    let (data, n_train, inf) = trained_setup();
    let val = data.view(n_train, data.pair_count() - n_train);

    // Average single-step quality over several validation pairs.
    let mut pearson_p = 0.0;
    let mut nrmse_p = 0.0;
    let n_eval = 5.min(val.len());
    for k in 0..n_eval {
        let (x, y) = val.pair(k);
        let pred = inf.rollout(x, 1).unwrap();
        let errs = field_errors(&pred.states[1], y, 1e-3);
        pearson_p += errs[0].pearson;
        nrmse_p += errs[0].nrmse();
    }
    pearson_p /= n_eval as f64;
    nrmse_p /= n_eval as f64;

    // "A very good agreement between the prediction and target data can be
    // observed" — at our reduced budget: strong correlation and small
    // normalized error on the pressure field.
    assert!(
        pearson_p > 0.85,
        "pressure correlation too low: {pearson_p}"
    );
    assert!(nrmse_p < 0.25, "pressure NRMSE too high: {nrmse_p}");
}

#[test]
fn rollout_error_accumulates_as_paper_reports() {
    // §IV-B: "the accumulative error decreases the accuracy" when the
    // output is fed back. The error at the rollout horizon must exceed the
    // single-step error, and the curve must trend upward.
    let (data, n_train, inf) = trained_setup();
    let val = data.view(n_train, data.pair_count() - n_train);
    let horizon = 8.min(val.len());
    let (start, _) = val.pair(0);
    let rollout = inf.rollout(start, horizon).unwrap();
    let reference: Vec<_> = (0..=horizon)
        .map(|s| data.snapshot(n_train + s).clone())
        .collect();
    let curve = rollout_error_curve(&rollout.states, &reference);

    assert_eq!(curve[0], 0.0, "step 0 compares the shared initial state");
    assert!(curve[1] > 0.0);
    assert!(
        curve[horizon] > 2.0 * curve[1],
        "error should accumulate: step1 {} vs step{horizon} {}",
        curve[1],
        curve[horizon]
    );
    // The trend is upward: the last third averages higher than the first
    // third (pointwise monotonicity is too strict for a stochastic model).
    let third = horizon / 3;
    let early: f64 = curve[1..=third.max(1)].iter().sum::<f64>() / third.max(1) as f64;
    let late: f64 = curve[horizon - third.max(1) + 1..=horizon]
        .iter()
        .sum::<f64>()
        / third.max(1) as f64;
    assert!(
        late > early,
        "rollout error should trend upward: early {early} late {late}"
    );
}

#[test]
fn velocity_fields_are_hardest_as_paper_observes() {
    // Fig. 3 discussion: "There are small discrepancies in the velocities"
    // while pressure/density agree best — an observation about the paper's
    // direct (absolute) prediction, so train in that mode here.
    let grid = 32;
    let snapshots = 48;
    let n_train = 32;
    let data = paper_dataset(grid, snapshots);
    let arch = ArchSpec::tiny();
    let mut cfg = TrainConfig::paper();
    cfg.epochs = 30;
    cfg.batch_size = 8;
    let outcome = ParallelTrainer::new(arch.clone(), PaddingStrategy::NeighborPad, cfg)
        .train_view(&data, n_train, 4)
        .expect("training");
    let inf = ParallelInference::from_outcome(arch, PaddingStrategy::NeighborPad, &outcome);
    let val = data.view(n_train, data.pair_count() - n_train);
    let mut nrmse = [0.0f64; 4];
    let n_eval = 5.min(val.len());
    for k in 0..n_eval {
        let (x, y) = val.pair(k);
        let pred = inf.rollout(x, 1).unwrap();
        for (c, e) in field_errors(&pred.states[1], y, 1e-3).iter().enumerate() {
            nrmse[c] += e.nrmse() / n_eval as f64;
        }
    }
    // pressure (0) and density (1) at least as good as the worse velocity.
    let worst_vel = nrmse[2].max(nrmse[3]);
    assert!(
        nrmse[0] <= worst_vel * 1.5,
        "pressure should be among the best: {nrmse:?}"
    );
    assert!(
        nrmse[1] <= worst_vel * 1.5,
        "density should be among the best: {nrmse:?}"
    );
}

#[test]
fn rollout_amplifies_single_step_error_in_both_modes() {
    // Ablation X5 (DESIGN.md), recalibrated to what this substrate actually
    // exhibits at test scale: absolute and residual prediction reach
    // comparable single-step accuracy with the same budget, and for *both*
    // modes the §IV-B accumulative error dominates under rollout — the
    // curve at the horizon is many times the single-step error. (The
    // earlier form of this test asserted residual rollouts are 5× more
    // stable than absolute; measured curves show the opposite ordering at
    // this scale, with residual amplifying faster per feedback step.)
    let grid = 32;
    let snapshots = 44;
    let n_train = 32;
    let horizon = 6;
    let data = paper_dataset(grid, snapshots);
    let arch = ArchSpec::tiny();

    let run = |prediction: PredictionMode| {
        let mut cfg = TrainConfig::paper();
        cfg.epochs = 30;
        cfg.batch_size = 8;
        cfg.prediction = prediction;
        let outcome = ParallelTrainer::new(arch.clone(), PaddingStrategy::NeighborPad, cfg)
            .train_view(&data, n_train, 4)
            .expect("training");
        let inf =
            ParallelInference::from_outcome(arch.clone(), PaddingStrategy::NeighborPad, &outcome);
        let (start, _) = data.view(n_train, data.pair_count() - n_train).pair(0);
        let roll = inf.rollout(start, horizon).unwrap();
        let reference: Vec<_> = (0..=horizon)
            .map(|s| data.snapshot(n_train + s).clone())
            .collect();
        rollout_error_curve(&roll.states, &reference)
    };

    let absolute = run(PredictionMode::Absolute);
    let residual = run(PredictionMode::Residual);

    // Both modes learn a usable single-step model at this budget…
    assert!(
        absolute[1] < 0.05,
        "absolute single-step error too high: {:.3e}",
        absolute[1]
    );
    assert!(
        residual[1] < 0.05,
        "residual single-step error too high: {:.3e}",
        residual[1]
    );
    // …of comparable quality (neither mode collapses),
    assert!(
        residual[1] < 2.5 * absolute[1] && absolute[1] < 2.5 * residual[1],
        "single-step errors should be comparable: absolute {:.3e} vs residual {:.3e}",
        absolute[1],
        residual[1]
    );
    // …and feeding predictions back amplifies the error well beyond the
    // single-step level in both modes — the §IV-B accumulation effect.
    assert!(
        absolute[horizon] > 2.0 * absolute[1],
        "absolute rollout should accumulate error: step1 {:.3e} vs step{horizon} {:.3e}",
        absolute[1],
        absolute[horizon]
    );
    assert!(
        residual[horizon] > 2.0 * residual[1],
        "residual rollout should accumulate error: step1 {:.3e} vs step{horizon} {:.3e}",
        residual[1],
        residual[horizon]
    );
}
