//! End-to-end request tracing (README "End-to-end request tracing"):
//!
//! * the cross-process merge invariants — merged event count is the sum of
//!   the shard counts, every event stays under its source pid, and the
//!   merged output parses as JSON (checked with a real parse, not a grep:
//!   the workspace is dependency-free, so a ~60-line recursive-descent
//!   validator stands in for serde);
//! * the id-follow path — a request submitted to the scheduler under a
//!   known [`RequestId`] can be found again as rank-attributed spans in
//!   the finished trace and as a `"req"` arg in the Chrome-trace export,
//!   the same chain `pdeml serve --trace-out` produces.

use pde_commsim::World;
use pde_ml_core::arch::ArchSpec;
use pde_ml_core::prelude::*;
use pde_trace::{names, Category, Kind};

// ---------------------------------------------------------------------------
// Minimal JSON validator
// ---------------------------------------------------------------------------

struct Json<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Json<'a> {
    fn fail(&self, what: &str) -> String {
        format!("invalid JSON at byte {}: {what}", self.i)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn ws(&mut self) {
        while self.peek().is_some_and(|c| c.is_ascii_whitespace()) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected '{}'", c as char)))
        }
    }

    fn lit(&mut self, s: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(s.as_bytes()) {
            self.i += s.len();
            Ok(())
        } else {
            Err(self.fail(&format!("expected '{s}'")))
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        loop {
            match self
                .peek()
                .ok_or_else(|| self.fail("unterminated string"))?
            {
                b'"' => {
                    self.i += 1;
                    return Ok(());
                }
                b'\\' => self.i += 2,
                c if c < 0x20 => return Err(self.fail("raw control char in string")),
                _ => self.i += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        if self.i == start {
            Err(self.fail("expected a number"))
        } else {
            Ok(())
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.ws();
        match self.peek().ok_or_else(|| self.fail("expected a value"))? {
            b'{' => {
                self.i += 1;
                self.ws();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(());
                }
                loop {
                    self.ws();
                    self.string()?;
                    self.ws();
                    self.eat(b':')?;
                    self.value()?;
                    self.ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(());
                        }
                        _ => return Err(self.fail("expected ',' or '}'")),
                    }
                }
            }
            b'[' => {
                self.i += 1;
                self.ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(());
                }
                loop {
                    self.value()?;
                    self.ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(());
                        }
                        _ => return Err(self.fail("expected ',' or ']'")),
                    }
                }
            }
            b'"' => self.string(),
            b't' => self.lit("true"),
            b'f' => self.lit("false"),
            b'n' => self.lit("null"),
            _ => self.number(),
        }
    }
}

/// Asserts `s` is one complete JSON document.
fn assert_valid_json(s: &str) {
    let mut p = Json {
        b: s.as_bytes(),
        i: 0,
    };
    p.value().unwrap_or_else(|e| panic!("{e}\n--- in:\n{s}"));
    p.ws();
    assert_eq!(p.i, s.len(), "trailing garbage after the JSON document");
}

// ---------------------------------------------------------------------------
// Shard helpers
// ---------------------------------------------------------------------------

/// Records a small session as world rank `pid` and exports it as that
/// process's shard. Returns `(shard_json, captured_event_count)`.
fn shard(pid: u64, spans: usize) -> (String, usize) {
    let handle = pde_trace::begin();
    pde_trace::set_thread_rank(pid as u32);
    for k in 0..spans {
        let s = pde_trace::span_args(Category::Infer, names::STEP, k as u64, 0);
        drop(s);
    }
    pde_trace::instant(Category::Comm, names::SEND, 1, 64);
    pde_trace::set_thread_rank(pde_trace::DRIVER_RANK);
    let trace = handle.finish();
    let n = trace.events.len();
    assert_eq!(n, spans + 1, "spans + one instant");
    (trace.chrome_json_for_pid(pid), n)
}

/// Non-metadata event rows of a Chrome-trace export (one event per line in
/// the controlled writer format).
fn event_rows(json: &str) -> impl Iterator<Item = &str> {
    json.lines()
        .filter(|l| l.contains("\"ph\":\"X\"") || l.contains("\"ph\":\"i\""))
}

#[test]
fn merged_trace_keeps_every_shard_event_under_its_pid_and_parses() {
    let (s0, n0) = shard(0, 3);
    let (s1, n1) = shard(1, 2);
    let (s2, n2) = shard(2, 4);
    let merged = pde_trace::merge_chrome_shards(&[s0.as_str(), s1.as_str(), s2.as_str()]);

    assert_valid_json(&merged);
    assert!(
        merged.contains("\"traceEvents\""),
        "merged output is a Chrome Trace Event document"
    );

    // Merged event count == the sum of the shard counts.
    assert_eq!(event_rows(&merged).count(), n0 + n1 + n2);
    // Every event carries a pid, and exactly its source shard's pid.
    for row in event_rows(&merged) {
        assert!(row.contains("\"pid\":"), "event row without a pid: {row}");
    }
    for (pid, n) in [(0u64, n0), (1, n1), (2, n2)] {
        let needle = format!("\"pid\":{pid},");
        assert_eq!(
            event_rows(&merged).filter(|l| l.contains(&needle)).count(),
            n,
            "pid {pid} lost or gained events in the merge"
        );
        // Perfetto needs ≥1 span per process group to render a track.
        assert!(
            event_rows(&merged).any(|l| l.contains(&needle) && l.contains("\"ph\":\"X\"")),
            "no span survived for pid {pid}"
        );
    }
}

#[test]
fn merge_order_does_not_drop_events_and_single_shard_round_trips() {
    let (s0, n0) = shard(4, 2);
    let (s1, n1) = shard(5, 3);
    let ab = pde_trace::merge_chrome_shards(&[s0.as_str(), s1.as_str()]);
    let ba = pde_trace::merge_chrome_shards(&[s1.as_str(), s0.as_str()]);
    assert_eq!(event_rows(&ab).count(), event_rows(&ba).count());
    assert_valid_json(&ba);
    // A single-shard merge is still a valid document with all its events.
    let solo = pde_trace::merge_chrome_shards(&[s0.as_str()]);
    assert_valid_json(&solo);
    assert_eq!(event_rows(&solo).count(), n0);
    assert_eq!(event_rows(&ab).count(), n0 + n1);
}

// ---------------------------------------------------------------------------
// Request-id follow-through
// ---------------------------------------------------------------------------

fn trained(n_ranks: usize) -> (pde_euler::DataSet, ParallelInference) {
    let data = pde_euler::dataset::paper_dataset(16, 8);
    let arch = ArchSpec::tiny();
    let outcome = ParallelTrainer::new(
        arch.clone(),
        PaddingStrategy::NeighborPad,
        TrainConfig::quick_test(),
    )
    .train_view(&data, 6, n_ranks)
    .unwrap();
    (
        data,
        ParallelInference::from_outcome(arch, PaddingStrategy::NeighborPad, &outcome),
    )
}

#[test]
fn request_id_follows_from_scheduler_submit_to_rank_spans_in_the_trace() {
    let (data, inf) = trained(2);
    // Session first, scheduler second: the dispatchers adopt the session
    // active at construction — exactly what `pdeml serve --trace-out` does.
    let handle = pde_trace::begin();
    let sched = Scheduler::over_world(World::new(2), 1, SchedulerConfig::default()).unwrap();
    sched.register("m", inf).unwrap();

    let id = RequestId::fresh();
    let ticket = sched
        .submit_with_id(id, "m", std::slice::from_ref(data.snapshot(0)), 2)
        .unwrap();
    assert_eq!(ticket.id(), id);
    let (result, phases) = ticket.wait_traced();
    assert!(result.is_ok(), "traced request serves normally");
    assert!(phases.rollout_us > 0, "phase split reaches the caller");
    // A second, untagged-by-us request must NOT inherit the first's id.
    let other = sched
        .submit("m", std::slice::from_ref(data.snapshot(1)), 1)
        .unwrap();
    let other_id = other.id();
    assert_ne!(other_id, id);
    assert!(other.wait().is_ok());

    drop(sched); // joins the dispatchers; all spans are in the rings
    let trace = handle.finish();

    let tagged: Vec<_> = trace
        .events
        .iter()
        .filter(|e| e.req == id.as_u64())
        .collect();
    assert!(!tagged.is_empty(), "no event carries the request id");
    assert!(
        tagged.iter().any(|e| {
            e.rank != pde_trace::DRIVER_RANK
                && matches!(e.kind, Kind::Span)
                && e.name == names::STEP
        }),
        "the id must reach rank-attributed rollout-step spans"
    );
    // Each request's spans carry its own id — ids do not bleed across the
    // dispatcher's request loop.
    assert!(
        trace.events.iter().any(|e| e.req == other_id.as_u64()),
        "second request's spans carry its id"
    );

    // And the id is greppable in the Chrome-trace export, on span rows.
    let json = trace.chrome_json();
    assert_valid_json(&json);
    let needle = format!("\"req\":{}", id.as_u64());
    assert!(
        json.lines()
            .any(|l| l.contains(&needle) && l.contains("\"ph\":\"X\"")),
        "flight/trace dumps must be greppable by request id"
    );
}
