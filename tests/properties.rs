//! Property-based tests over the cross-crate invariants.

use pde_domain::{gather, scatter, GridPartition};
use pde_ml_core::data::{extract_input, extract_target};
use pde_tensor::pad::{crop_tensor4, pad_tensor4_asym, PadMode};
use pde_tensor::{Tensor3, Tensor4};
use proptest::prelude::*;

fn arb_tensor3(c: usize, max_side: usize) -> impl Strategy<Value = Tensor3> {
    (2..=max_side, 2..=max_side).prop_flat_map(move |(h, w)| {
        prop::collection::vec(-10.0f64..10.0, c * h * w)
            .prop_map(move |data| Tensor3::from_vec(c, h, w, data))
    })
}

/// Naive reference `C += op(A) * op(B)` triple loop (row-major flat buffers).
#[allow(clippy::too_many_arguments)]
fn naive_gemm(
    m: usize,
    k: usize,
    n: usize,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    ta: bool,
    tb: bool,
) {
    for i in 0..m {
        for p in 0..k {
            let av = if ta { a[p * m + i] } else { a[i * k + p] };
            for j in 0..n {
                let bv = if tb { b[j * k + p] } else { b[p * n + j] };
                c[i * n + j] += av * bv;
            }
        }
    }
}

/// Dimensions stressing the packed kernel's edge handling: values around and
/// below the MR=4 / NR=8 micro-tile, never a multiple of either by luck
/// alone, and the degenerate 1s.
fn arb_dim() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![1usize, 2, 3, 4, 5, 7, 8, 9, 13, 16, 17, 31, 33])
}

fn arb_mat(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-4.0f64..4.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The packed register-tiled `gemm` matches the naive triple loop on
    /// arbitrary (non-tile-divisible) shapes, accumulating into non-zero C.
    #[test]
    fn packed_gemm_matches_naive(
        m in arb_dim(),
        k in arb_dim(),
        n in arb_dim(),
        seed in 0u64..1_000_000,
    ) {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            (s % 1000) as f64 / 250.0 - 2.0
        };
        let a: Vec<f64> = (0..m * k).map(|_| next()).collect();
        let b: Vec<f64> = (0..k * n).map(|_| next()).collect();
        let c0: Vec<f64> = (0..m * n).map(|_| next()).collect();
        let mut c = c0.clone();
        let mut c_ref = c0;
        pde_tensor::gemm(m, k, n, &a, &b, &mut c);
        naive_gemm(m, k, n, &a, &b, &mut c_ref, false, false);
        for (x, y) in c.iter().zip(&c_ref) {
            prop_assert!((x - y).abs() < 1e-10, "gemm {m}x{k}x{n}: {x} vs {y}");
        }
    }

    /// `gemm_tn` (`C += Aᵀ·B`, A stored k×m) matches the naive loop.
    #[test]
    fn packed_gemm_tn_matches_naive(
        m in arb_dim(),
        k in arb_dim(),
        n in arb_dim(),
        a in arb_mat(33 * 33),
        b in arb_mat(33 * 33),
    ) {
        let a = &a[..k * m];
        let b = &b[..k * n];
        let mut c = vec![0.0; m * n];
        let mut c_ref = vec![0.0; m * n];
        pde_tensor::gemm_tn(m, k, n, a, b, &mut c);
        naive_gemm(m, k, n, a, b, &mut c_ref, true, false);
        for (x, y) in c.iter().zip(&c_ref) {
            prop_assert!((x - y).abs() < 1e-10, "gemm_tn {m}x{k}x{n}: {x} vs {y}");
        }
    }

    /// `gemm_nt` (`C += A·Bᵀ`, B stored n×k) matches the naive loop.
    #[test]
    fn packed_gemm_nt_matches_naive(
        m in arb_dim(),
        k in arb_dim(),
        n in arb_dim(),
        a in arb_mat(33 * 33),
        b in arb_mat(33 * 33),
    ) {
        let a = &a[..m * k];
        let b = &b[..n * k];
        let mut c = vec![0.0; m * n];
        let mut c_ref = vec![0.0; m * n];
        pde_tensor::gemm_nt(m, k, n, a, b, &mut c);
        naive_gemm(m, k, n, a, b, &mut c_ref, false, true);
        for (x, y) in c.iter().zip(&c_ref) {
            prop_assert!((x - y).abs() < 1e-10, "gemm_nt {m}x{k}x{n}: {x} vs {y}");
        }
    }

    /// The batched entry points equal per-sample calls of the plain ones —
    /// bitwise, since the driver accumulates KC blocks in the same order.
    #[test]
    fn batched_gemm_equals_per_sample(
        m in arb_dim(),
        k in arb_dim(),
        n in arb_dim(),
        samples in 1usize..4,
        a in arb_mat(33 * 33),
        b in arb_mat(3 * 33 * 33),
    ) {
        let a = &a[..m * k];
        let b_all = &b[..samples * k * n];
        let mut c_batch = vec![0.0; samples * m * n];
        pde_tensor::gemm_batch(samples, m, k, n, a, b_all, &mut c_batch);
        for s in 0..samples {
            let mut c_one = vec![0.0; m * n];
            pde_tensor::gemm(m, k, n, a, &b_all[s * k * n..][..k * n], &mut c_one);
            prop_assert_eq!(&c_batch[s * m * n..][..m * n], &c_one[..]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every partition tiles the grid exactly once.
    #[test]
    fn partition_tiles_exactly(
        h in 4usize..40,
        w in 4usize..40,
        py in 1usize..5,
        px in 1usize..5,
    ) {
        prop_assume!(h >= py && w >= px);
        let part = GridPartition::new(h, w, py, px);
        let mut covered = vec![0u32; h * w];
        for b in part.blocks() {
            for i in b.i0..b.i1() {
                for j in b.j0..b.j1() {
                    covered[i * w + j] += 1;
                }
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1));
    }

    /// scatter → gather is the identity for any snapshot and partition.
    #[test]
    fn scatter_gather_identity(
        t in arb_tensor3(3, 24),
        py in 1usize..4,
        px in 1usize..4,
    ) {
        prop_assume!(t.h() >= py && t.w() >= px);
        let part = GridPartition::new(t.h(), t.w(), py, px);
        let locals = scatter(&t, &part);
        prop_assert_eq!(gather(&locals, &part), t);
    }

    /// Stitching every rank's extracted target (crop 0) back reproduces the
    /// global snapshot, and each input's interior window equals its block.
    #[test]
    fn extract_input_interior_matches_block(
        t in arb_tensor3(4, 20),
        halo in 0usize..4,
        rank_seed in 0usize..16,
    ) {
        prop_assume!(t.h() >= 2 && t.w() >= 2);
        let part = GridPartition::new(t.h(), t.w(), 2, 2);
        let rank = rank_seed % part.rank_count();
        let block = part.block_of_rank(rank);
        let input = extract_input(&t, &block, halo, PadMode::Zeros);
        prop_assert_eq!(input.shape(), (4, block.h + 2 * halo, block.w + 2 * halo));
        let (oi, oj) = block.interior_offset_in_extended(halo);
        // The interior of the input equals the raw block — regardless of
        // where the halo was clipped or padded. Offsets: the extended
        // window starts at (block.i0 - oi); interior sits oi rows below the
        // halo... compare through the definition instead:
        let interior = input.window(halo, halo, block.h, block.w);
        let direct = extract_target(&t, &block, 0);
        prop_assert_eq!(interior, direct);
        let _ = (oi, oj);
    }

    /// pad → crop round-trips for every mode and asymmetric margins.
    #[test]
    fn pad_crop_roundtrip(
        n in 1usize..3,
        c in 1usize..3,
        h in 2usize..8,
        w in 2usize..8,
        t in 0usize..3,
        b in 0usize..3,
        l in 0usize..3,
        r in 0usize..3,
        mode_idx in 0usize..3,
    ) {
        let mode = [PadMode::Zeros, PadMode::Replicate, PadMode::Reflect][mode_idx];
        let x = Tensor4::from_fn(n, c, h, w, |s, ch, i, j| {
            (s * 1000 + ch * 100 + i * 10 + j) as f64
        });
        let padded = pad_tensor4_asym(&x, t, b, l, r, mode);
        prop_assert_eq!(crop_tensor4(&padded, t, b, l, r), x);
    }

    /// The GEMM and direct convolution paths agree on random geometry.
    #[test]
    fn conv_paths_agree(
        in_c in 1usize..4,
        out_c in 1usize..4,
        k in prop::sample::select(vec![1usize, 3, 5]),
        pad in 0usize..3,
        h in 5usize..10,
        w in 5usize..10,
        seed in 0u64..1000,
    ) {
        use pde_tensor::conv::{conv2d, conv2d_im2col, ConvScratch};
        use pde_tensor::Conv2dSpec;
        let spec = Conv2dSpec { in_c, out_c, kh: k, kw: k, stride: 1, pad };
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            (s % 1000) as f64 / 500.0 - 1.0
        };
        let x = Tensor4::from_fn(2, in_c, h, w, |_, _, _, _| next());
        let wt = Tensor4::from_fn(out_c, in_c, k, k, |_, _, _, _| next());
        let bias: Vec<f64> = (0..out_c).map(|_| next()).collect();
        let y1 = conv2d(&x, &wt, &bias, &spec);
        let y2 = conv2d_im2col(&x, &wt, &bias, &spec, &mut ConvScratch::new());
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    /// Allreduce equals the plain sum of contributions, at any world size.
    #[test]
    fn allreduce_is_sum(
        n_ranks in 1usize..6,
        len in 1usize..20,
        seed in 0u64..1000,
    ) {
        use pde_commsim::World;
        let contributions: Vec<Vec<f64>> = (0..n_ranks)
            .map(|r| (0..len).map(|i| ((seed + r as u64) * 31 + i as u64) as f64 * 0.1).collect())
            .collect();
        let expected: Vec<f64> = (0..len)
            .map(|i| contributions.iter().map(|c| c[i]).sum())
            .collect();
        let contributions = std::sync::Arc::new(contributions);
        let cc = contributions.clone();
        let results = World::new(n_ranks).run(move |mut comm| {
            comm.allreduce_sum(&cc[comm.rank()])
        });
        for r in results {
            for (a, b) in r.iter().zip(&expected) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }

    /// MAPE loss value is invariant under joint scaling of prediction and
    /// target (well above the floor) — the property that makes it suitable
    /// for multi-magnitude fields.
    #[test]
    fn mape_is_scale_invariant(
        scale in 1.0f64..1e6,
        vals in prop::collection::vec((1.0f64..10.0, 1.0f64..10.0), 4..32),
    ) {
        use pde_nn::loss::{Loss, Mape};
        let m = Mape::new(1e-12);
        let (p, t): (Vec<f64>, Vec<f64>) = vals.into_iter().unzip();
        let n = p.len();
        let mk = |v: &[f64], s: f64| Tensor4::from_vec(1, 1, 1, n, v.iter().map(|x| x * s).collect());
        let base = m.value(&mk(&p, 1.0), &mk(&t, 1.0));
        let scaled = m.value(&mk(&p, scale), &mk(&t, scale));
        prop_assert!((base - scaled).abs() < 1e-6 * (1.0 + base));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Messages with the same (src, tag) are delivered in send order (the
    /// FIFO guarantee the halo-exchange protocol relies on when reusing a
    /// tag across rounds).
    #[test]
    fn same_tag_messages_are_fifo(count in 1usize..20, tag in 0u32..100) {
        use pde_commsim::World;
        let out = World::new(2).run(move |mut comm| {
            if comm.rank() == 0 {
                for k in 0..count {
                    comm.send(1, tag, vec![k as f64]);
                }
                Vec::new()
            } else {
                (0..count).map(|_| comm.recv(0, tag)[0] as usize).collect::<Vec<_>>()
            }
        });
        prop_assert_eq!(&out[1], &(0..count).collect::<Vec<_>>());
    }

    /// The linearized Euler solver is linear: scaling the initial condition
    /// scales the whole trajectory (superposition holds for the scheme, not
    /// just the PDE, because Rusanov fluxes of a linear system are linear).
    #[test]
    fn solver_is_linear_in_the_initial_condition(
        alpha in 0.1f64..5.0,
        steps in 1usize..12,
    ) {
        use pde_euler::{Boundary, EulerSolver, InitialCondition, SolverConfig};
        let cfg = SolverConfig::paper(16, 16);
        let base = InitialCondition::GaussianPulse {
            x0: 0.1, y0: -0.2, half_width: 0.3, amplitude: 0.5,
        };
        let scaled = InitialCondition::GaussianPulse {
            x0: 0.1, y0: -0.2, half_width: 0.3, amplitude: 0.5 * alpha,
        };
        let mut a = EulerSolver::new(cfg, Boundary::Outflow, &base);
        let mut b = EulerSolver::new(cfg, Boundary::Outflow, &scaled);
        a.run(steps);
        b.run(steps);
        let ta = a.state().to_tensor();
        let tb = b.state().to_tensor();
        for (x, y) in ta.as_slice().iter().zip(tb.as_slice()) {
            prop_assert!(
                (x * alpha - y).abs() < 1e-9 * (1.0 + y.abs()),
                "linearity violated: {} * {} != {}", x, alpha, y
            );
        }
    }

    /// Channel normalization round-trips any snapshot whose values exceed
    /// the fitting floor.
    #[test]
    fn channel_norm_roundtrip(
        seed in 0u64..500,
        h in 2usize..10,
        w in 2usize..10,
    ) {
        use pde_ml_core::norm::ChannelNorm;
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13; state ^= state >> 7; state ^= state << 17;
            (state % 2000) as f64 / 100.0 - 10.0
        };
        let t = Tensor3::from_fn(4, h, w, |_, _, _| next());
        let scales: Vec<f64> = (0..4).map(|c| 10f64.powi(c * 2 - 3)).collect();
        let n = ChannelNorm::from_scales(scales);
        let back = n.denormalize3(&n.normalize3(&t));
        for (a, b) in back.as_slice().iter().zip(t.as_slice()) {
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }
}

/// Builds a stack of `Conv2d::same` + `LeakyReLu` stages on 2 input
/// channels, with seeded Kaiming init (so two calls with different seeds
/// give the same *structure* but different weights).
fn random_conv_stack(stages: &[(usize, usize)], slope: f64, seed: u64) -> pde_nn::Sequential {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = pde_nn::Sequential::new();
    let mut in_c = 2usize;
    for &(out_c, k) in stages {
        let mut conv = pde_nn::Conv2d::same(in_c, out_c, k);
        pde_nn::init::init_conv(
            &mut conv,
            pde_nn::init::Init::KaimingUniform { neg_slope: slope },
            &mut rng,
        );
        net.push_boxed(Box::new(conv));
        net.push_boxed(Box::new(pde_nn::LeakyReLu::new(slope)));
        in_c = out_c;
    }
    net
}

/// One of each stateful-or-stateless optimizer kind, so the checkpoint
/// property covers empty slots (plain SGD) through two-moment slots (Adam).
fn make_optimizer(kind: usize) -> Box<dyn pde_nn::Optimizer> {
    match kind {
        0 => Box::new(pde_nn::Adam::new(1e-2)),
        1 => Box::new(pde_nn::AdamW::new(1e-2, 0.01)),
        2 => Box::new(pde_nn::Sgd::with_momentum(1e-2, 0.9)),
        3 => Box::new(pde_nn::Sgd::new(1e-2)),
        _ => Box::new(pde_nn::RmsProp::new(1e-2)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// PDECK v1 checkpoints round-trip bitwise for *random* `Sequential`
    /// architectures and every optimizer kind: parameters and optimizer
    /// state load back exactly, and — the invariant users care about —
    /// resumed training takes the identical trajectory.
    #[test]
    fn checkpoint_round_trip_is_bitwise_for_random_architectures(
        stages in prop::collection::vec(
            (prop::sample::select(vec![1usize, 2, 3, 4]),
             prop::sample::select(vec![1usize, 3])),
            1..=3,
        ),
        slope in prop::sample::select(vec![0.0f64, 0.01, 0.2]),
        opt_kind in 0usize..5,
        seed in 0u64..10_000,
    ) {
        use pde_nn::{Layer, Loss, Mse};
        use pde_tensor::Tensor4;

        let mut a = random_conv_stack(&stages, slope, seed);
        let mut opt_a = make_optimizer(opt_kind);

        let out_c = stages.last().unwrap().0;
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            (s % 2000) as f64 / 1000.0 - 1.0
        };
        let x = Tensor4::from_fn(2, 2, 5, 5, |_, _, _, _| next());
        let target = Tensor4::zeros(2, out_c, 5, 5);
        let step = |net: &mut pde_nn::Sequential, opt: &mut dyn pde_nn::Optimizer| {
            net.zero_grad();
            let y = net.forward(&x, true);
            let (_, grad) = Mse.value_and_grad(&y, &target);
            net.backward(&grad);
            opt.step(&mut net.param_groups());
        };

        // A few real steps so momentum/second-moment slots are nonzero.
        for _ in 0..3 {
            step(&mut a, opt_a.as_mut());
        }

        let mut buf = Vec::new();
        pde_nn::serialize::write_checkpoint(&mut a, opt_a.as_ref(), &mut buf).unwrap();

        // Same architecture, deliberately different init + fresh optimizer.
        let mut b = random_conv_stack(&stages, slope, seed ^ 0xDEAD_BEEF);
        let mut opt_b = make_optimizer(opt_kind);
        pde_nn::serialize::read_checkpoint(&mut b, opt_b.as_mut(), &mut buf.as_slice())
            .unwrap();

        prop_assert_eq!(
            pde_nn::serialize::snapshot(&mut a),
            pde_nn::serialize::snapshot(&mut b),
            "restored parameters differ"
        );
        prop_assert_eq!(
            opt_a.export_state(),
            opt_b.export_state(),
            "restored optimizer state differs"
        );

        // Bitwise-identical resumed trajectory, two further steps deep.
        for _ in 0..2 {
            step(&mut a, opt_a.as_mut());
            step(&mut b, opt_b.as_mut());
        }
        prop_assert_eq!(
            pde_nn::serialize::snapshot(&mut a),
            pde_nn::serialize::snapshot(&mut b),
            "resumed training diverged from the checkpointed run"
        );
    }

    /// The self-healing invariant behind rank respawn: a rank killed
    /// *mid-epoch* — at a random step `kill_at` strictly inside a training
    /// run, any optimizer kind — and restored from its last checkpoint
    /// continues to a final state bitwise identical to the run that was
    /// never interrupted. This is exactly what lets a respawned rank rejoin
    /// a serving world without perturbing a single bit of its output.
    #[test]
    fn restore_after_mid_epoch_kill_continues_bitwise(
        stages in prop::collection::vec(
            (prop::sample::select(vec![1usize, 2, 3, 4]),
             prop::sample::select(vec![1usize, 3])),
            1..=3,
        ),
        slope in prop::sample::select(vec![0.0f64, 0.01, 0.2]),
        opt_kind in 0usize..5,
        kill_at in 1usize..6,
        seed in 0u64..10_000,
    ) {
        use pde_nn::{Layer, Loss, Mse};
        use pde_tensor::Tensor4;

        let total_steps = 7usize; // kill_at < total: the kill is mid-epoch

        let mut survivor = random_conv_stack(&stages, slope, seed);
        let mut opt_s = make_optimizer(opt_kind);

        let out_c = stages.last().unwrap().0;
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            (s % 2000) as f64 / 1000.0 - 1.0
        };
        let x = Tensor4::from_fn(2, 2, 5, 5, |_, _, _, _| next());
        let target = Tensor4::zeros(2, out_c, 5, 5);
        let step = |net: &mut pde_nn::Sequential, opt: &mut dyn pde_nn::Optimizer| {
            net.zero_grad();
            let y = net.forward(&x, true);
            let (_, grad) = Mse.value_and_grad(&y, &target);
            net.backward(&grad);
            opt.step(&mut net.param_groups());
        };

        // Train to the kill point and checkpoint there — the state a
        // supervisor would have persisted before the crash.
        for _ in 0..kill_at {
            step(&mut survivor, opt_s.as_mut());
        }
        let mut checkpoint = Vec::new();
        pde_nn::serialize::write_checkpoint(&mut survivor, opt_s.as_ref(), &mut checkpoint)
            .unwrap();

        // The uninterrupted run finishes the epoch.
        for _ in kill_at..total_steps {
            step(&mut survivor, opt_s.as_mut());
        }

        // The killed rank: everything in memory is lost (fresh net from a
        // different seed, fresh optimizer), then restored and resumed for
        // the same remaining steps.
        let mut respawned = random_conv_stack(&stages, slope, seed ^ 0xBAD_C0DE);
        let mut opt_r = make_optimizer(opt_kind);
        pde_nn::serialize::read_checkpoint(
            &mut respawned,
            opt_r.as_mut(),
            &mut checkpoint.as_slice(),
        )
        .unwrap();
        for _ in kill_at..total_steps {
            step(&mut respawned, opt_r.as_mut());
        }

        prop_assert_eq!(
            pde_nn::serialize::snapshot(&mut survivor),
            pde_nn::serialize::snapshot(&mut respawned),
            "a restore-then-continue after a mid-epoch kill (step {}/{}, optimizer kind {}) \
             must be bitwise equal to the uninterrupted run",
            kill_at, total_steps, opt_kind
        );
        prop_assert_eq!(
            opt_s.export_state(),
            opt_r.export_state(),
            "optimizer slots must also converge to identical state"
        );
    }
}
