//! Experiment T1 — reproduces **Table I** of the paper: the CNN layer
//! architecture, with parameter counts and measured per-layer forward /
//! backward cost added (our substrate's equivalent of the table's
//! motivation: knowing what each layer contributes).
//!
//! Run with: `cargo run --release --example table1_architecture`
//! Writes `table1_architecture.csv` to the results dir
//! (`$PDEML_RESULTS_DIR`, default `results/`).

use pde_ml_core::arch::ArchSpec;
use pde_ml_core::report::{results_path, Csv};
use pde_nn::{Conv2d, Layer};
use pde_tensor::Tensor4;
use std::time::Instant;

fn main() {
    let arch = ArchSpec::paper();
    println!("TABLE I: CNN LAYERS ARCHITECTURE (paper, PDSEC 2021)\n");
    print!("{}", arch.table());
    println!("\ntotal learnable parameters: {}\n", arch.param_count());

    // Measured per-layer cost on a 64×64 input (proportional at 256×256).
    let (h, w) = (64, 64);
    let batch = 4;
    println!("measured per-layer cost on a {h}x{w} input (batch {batch}):\n");
    println!(
        "{:<8} {:>10} {:>14} {:>14}",
        "layer", "params", "fwd [ms]", "fwd+bwd [ms]"
    );

    let mut csv = Csv::new(&[
        "layer",
        "in_channels",
        "out_channels",
        "kernel",
        "padding",
        "params",
        "fwd_ms",
        "fwd_bwd_ms",
    ]);

    for row in arch.layer_rows() {
        let mut conv = Conv2d::same(row.in_channels, row.out_channels, arch.kernel);
        let x = Tensor4::from_fn(batch, row.in_channels, h, w, |_, c, i, j| {
            ((c + i) as f64 * 0.1 + j as f64 * 0.01).sin()
        });
        // Warm up, then time.
        let y = conv.forward(&x, true);
        let reps = 10;
        let t0 = Instant::now();
        for _ in 0..reps {
            let _ = conv.forward(&x, false);
        }
        let fwd_ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
        let t1 = Instant::now();
        for _ in 0..reps {
            let _ = conv.forward(&x, true);
            let _ = conv.backward(&y);
        }
        let fb_ms = t1.elapsed().as_secs_f64() * 1e3 / reps as f64;
        println!(
            "conv{:<4} {:>10} {:>14.3} {:>14.3}",
            row.layer, row.params, fwd_ms, fb_ms
        );
        csv.row(&[
            format!("conv{}", row.layer),
            row.in_channels.to_string(),
            row.out_channels.to_string(),
            format!(
                "{}x{}x{}x{}",
                row.kernel.0, row.kernel.1, row.kernel.2, row.kernel.3
            ),
            "Yes".to_string(),
            row.params.to_string(),
            format!("{fwd_ms:.4}"),
            format!("{fb_ms:.4}"),
        ]);
    }

    let out = results_path("table1_architecture.csv").expect("results dir");
    csv.write_to(&out).expect("write CSV");
    println!("\nwrote {}", out.display());
}
