//! The deployment workflow a downstream user actually runs: train once,
//! checkpoint every subdomain network to disk, then later reload the fleet
//! in a fresh process (here: a fresh scope) and serve parallel inference
//! without retraining.
//!
//! Demonstrates the versioned `pde-nn` model format, per-rank checkpoint
//! naming, corruption detection, and that reloaded models reproduce the
//! original rollout bit-for-bit.
//!
//! Run with: `cargo run --release --example checkpoint_workflow`

use pde_euler::dataset::paper_dataset;
use pde_ml_core::norm::ChannelNorm;
use pde_ml_core::prelude::*;
use pde_nn::serialize::{load_params, save_params, snapshot};
use std::fs;

fn main() {
    let grid = 32;
    let data = paper_dataset(grid, 40);
    let arch = ArchSpec::tiny();
    let strategy = PaddingStrategy::NeighborPad;
    let mut cfg = TrainConfig::paper_residual();
    cfg.epochs = 20;
    cfg.batch_size = 8;
    let prediction = cfg.prediction;

    // --- Phase 1: train and checkpoint. ----------------------------------
    let outcome = ParallelTrainer::new(arch.clone(), strategy, cfg)
        .train_view(&data, 30, 4)
        .expect("training");
    let dir = pde_ml_core::report::results_dir()
        .expect("results dir")
        .join("checkpoints");
    fs::create_dir_all(&dir).expect("mkdir");
    for r in &outcome.rank_results {
        let mut net = arch.build_for(strategy, 0);
        pde_nn::serialize::restore(&mut net, &r.weights);
        let path = dir.join(format!("rank{:03}.pdenn", r.rank));
        save_params(&mut net, &path).expect("save");
        println!(
            "wrote {} ({} bytes)",
            path.display(),
            fs::metadata(&path).unwrap().len()
        );
    }
    // Persist the normalization scales alongside (tiny CSV).
    let mut norm_csv = pde_ml_core::report::Csv::new(&["channel", "scale"]);
    for (c, s) in outcome.norm.scales().iter().enumerate() {
        norm_csv.row(&[c.to_string(), format!("{s:.17e}")]);
    }
    norm_csv.write_to(&dir.join("norm.csv")).expect("norm csv");

    let reference_rollout = {
        let inf = ParallelInference::from_outcome(arch.clone(), strategy, &outcome);
        inf.rollout(data.snapshot(30), 4).unwrap()
    };

    // --- Phase 2: a "fresh process" reloads everything from disk. --------
    let reloaded_weights: Vec<Vec<f64>> = (0..4)
        .map(|rank| {
            let mut net = arch.build_for(strategy, 12345); // arbitrary init, will be overwritten
            load_params(&mut net, &dir.join(format!("rank{rank:03}.pdenn"))).expect("load");
            snapshot(&mut net)
        })
        .collect();
    let scales: Vec<f64> = fs::read_to_string(dir.join("norm.csv"))
        .expect("read norm")
        .lines()
        .skip(1)
        .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
        .collect();
    let norm = ChannelNorm::from_scales(scales);

    let inf = ParallelInference::new(
        arch.clone(),
        strategy,
        outcome.partition,
        reloaded_weights,
        norm,
        prediction,
    );
    let replayed = inf.rollout(data.snapshot(30), 4).unwrap();

    // --- Verify bit-identical replay. -------------------------------------
    let mut identical = true;
    for (a, b) in reference_rollout.states.iter().zip(&replayed.states) {
        identical &= a == b;
    }
    println!(
        "\nreloaded fleet replayed a 4-step rollout: {}",
        if identical {
            "bit-identical to the original"
        } else {
            "MISMATCH (bug!)"
        }
    );
    assert!(identical);

    // --- Corruption detection demo. ---------------------------------------
    let victim = dir.join("rank000.pdenn");
    let mut bytes = fs::read(&victim).unwrap();
    bytes.truncate(bytes.len() / 2);
    let corrupt = dir.join("corrupt.pdenn");
    fs::write(&corrupt, bytes).unwrap();
    let mut net = arch.build_for(strategy, 0);
    match load_params(&mut net, &corrupt) {
        Err(e) => println!("corrupted checkpoint correctly rejected: {e}"),
        Ok(()) => panic!("corrupted checkpoint silently accepted"),
    }
    fs::remove_file(&corrupt).ok();
}
