//! Experiment X8 — a per-rank timeline of a degraded rollout.
//!
//! Trains a quick fleet, then rolls it out under 40% seeded message loss
//! with the `LastKnown` fallback while a trace session records every
//! span and instant on every rank thread. The capture is written in
//! Chrome trace format — open it in Perfetto (https://ui.perfetto.dev)
//! or chrome://tracing and each rank appears as its own track, with
//! `halo_recv` spans visibly stretching to the degrade timeout wherever
//! the fault plan swallowed a strip.
//!
//! Environment overrides: `GRID`, `SNAPSHOTS`, `EPOCHS`, `RANKS`,
//! `STEPS`, `LOSS_RATE` (percent), `HALO_TIMEOUT_MS`.
//!
//! Run with: `cargo run --release --example trace_capture`
//! Writes `trace_degraded_rollout.json` to the results dir
//! (`$PDEML_RESULTS_DIR`, default `results/`).

use pde_euler::dataset::paper_dataset;
use pde_ml_core::observe;
use pde_ml_core::prelude::*;
use std::time::Duration;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let grid = env_usize("GRID", 32);
    let snapshots = env_usize("SNAPSHOTS", 20);
    let epochs = env_usize("EPOCHS", 6);
    let ranks = env_usize("RANKS", 4);
    let steps = env_usize("STEPS", 6);
    let loss_pct = env_usize("LOSS_RATE", 40);
    let timeout = Duration::from_millis(env_usize("HALO_TIMEOUT_MS", 5) as u64);
    let train_pairs = snapshots * 2 / 3;
    let seed = 0x71AC_u64;

    println!(
        "trace capture: {grid}x{grid}, {ranks} ranks, {steps}-step rollout \
         at {loss_pct}% halo loss (last-known fallback)\n"
    );
    let data = paper_dataset(grid, snapshots);
    let arch = ArchSpec::tiny();
    let mut cfg = TrainConfig::quick_test();
    cfg.epochs = epochs;
    let outcome = ParallelTrainer::new(arch.clone(), PaddingStrategy::NeighborPad, cfg)
        .train_view(&data, train_pairs, ranks)
        .expect("training");

    let inf = ParallelInference::from_outcome(arch, PaddingStrategy::NeighborPad, &outcome)
        .with_halo_policy(HaloPolicy::Degrade {
            timeout,
            fallback: HaloFallback::LastKnown,
        })
        .with_fault_plan(FaultPlan::loss_rate(loss_pct as f64 / 100.0, seed));

    let handle = pde_trace::begin();
    let rollout = inf.rollout(data.snapshot(train_pairs), steps).unwrap();
    let trace = handle.finish();

    let rows = observe::rollout_metrics(&trace, &rollout);
    let path =
        pde_ml_core::report::results_path("trace_degraded_rollout.json").expect("results dir");
    std::fs::write(&path, trace.chrome_json()).expect("write trace");

    println!(
        "rollout degraded: {} halos lost, {} fallbacks over {} steps",
        rollout.total_halos_lost(),
        rollout.total_fallbacks(),
        rollout.n_steps()
    );
    println!(
        "wrote {}: {} events over {} rank tracks ({} dropped)\n",
        path.display(),
        trace.events.len(),
        trace.ranks().len(),
        trace.total_dropped()
    );
    println!("{}", pde_trace::metrics::format_table(&rows));
}
