//! Experiment X7 — rollout accuracy under lossy halo exchange.
//!
//! The paper's scheme assumes every halo strip arrives every step. This
//! harness quantifies what failing that assumption costs: it trains one
//! fleet, then replays the same rollout under seeded message-loss rates
//! with both degraded-mode fallbacks (`ZeroFill`, `LastKnown`) and
//! reports error growth against the finite-volume solver. The loss
//! pattern is a pure hash of (seed, edge, tag), so every row of the
//! sweep is reproducible bit-for-bit.
//!
//! Environment overrides: `GRID`, `SNAPSHOTS`, `EPOCHS`, `RANKS`,
//! `STEPS`, `HALO_TIMEOUT_MS`.
//!
//! Run with: `cargo run --release --example fault_resilience`
//! Writes `halo_loss_sweep.csv` to the results dir (`$PDEML_RESULTS_DIR`,
//! default `results/`).

use pde_euler::dataset::paper_dataset;
use pde_ml_core::metrics::mean_rmse;
use pde_ml_core::prelude::*;
use pde_ml_core::report::{results_path, Csv};
use std::time::Duration;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let grid = env_usize("GRID", 32);
    let snapshots = env_usize("SNAPSHOTS", 60);
    let epochs = env_usize("EPOCHS", 10);
    let ranks = env_usize("RANKS", 4);
    let steps = env_usize("STEPS", 8);
    let timeout = Duration::from_millis(env_usize("HALO_TIMEOUT_MS", 50) as u64);
    let train_pairs = snapshots * 2 / 3;
    let seed = 0x4A10_u64;

    println!(
        "halo-loss resilience sweep: {grid}x{grid}, {snapshots} snapshots, \
         {train_pairs} training pairs, {epochs} epochs, {ranks} ranks, \
         {steps}-step rollout\n"
    );
    let data = paper_dataset(grid, snapshots);
    let arch = ArchSpec::paper();
    let mut config = TrainConfig::paper();
    config.epochs = epochs;
    let outcome = ParallelTrainer::new(arch.clone(), PaddingStrategy::NeighborPad, config)
        .train_view(&data, train_pairs, ranks)
        .expect("training");

    // Roll out from the first validation snapshot so the solver states we
    // score against were never seen in training.
    let start = train_pairs;
    let initial = data.snapshot(start).clone();
    let truth: Vec<_> = (0..=steps).map(|k| data.snapshot(start + k)).collect();
    let score = |states: &[pde_tensor::Tensor3]| {
        let mean = states
            .iter()
            .zip(&truth)
            .skip(1)
            .map(|(s, t)| mean_rmse(s, t))
            .sum::<f64>()
            / steps as f64;
        let last = mean_rmse(states.last().unwrap(), truth.last().unwrap());
        (mean, last)
    };

    let strict =
        ParallelInference::from_outcome(arch.clone(), PaddingStrategy::NeighborPad, &outcome)
            .rollout(&initial, steps)
            .unwrap();
    let (strict_mean, strict_last) = score(&strict.states);
    println!(
        "{:<10} {:>6} {:>8} {:>8} {:>6} {:>12} {:>12}",
        "fallback", "loss%", "lost", "zeroed", "stale", "mean RMSE", "final RMSE"
    );
    println!(
        "{:<10} {:>6} {:>8} {:>8} {:>6} {:>12.4e} {:>12.4e}",
        "strict", "0", 0, 0, 0, strict_mean, strict_last
    );

    let mut csv = Csv::new(&[
        "fallback",
        "loss_rate",
        "halos_lost",
        "halos_zero_filled",
        "halos_stale",
        "mean_rmse",
        "final_rmse",
    ]);
    csv.row(&[
        "strict".into(),
        "0.00".into(),
        "0".into(),
        "0".into(),
        "0".into(),
        format!("{strict_mean:.6e}"),
        format!("{strict_last:.6e}"),
    ]);

    for fallback in [HaloFallback::ZeroFill, HaloFallback::LastKnown] {
        let label = match fallback {
            HaloFallback::ZeroFill => "zero-fill",
            HaloFallback::LastKnown => "last-known",
        };
        for rate in [0.05, 0.1, 0.2, 0.4] {
            let inf = ParallelInference::from_outcome(
                arch.clone(),
                PaddingStrategy::NeighborPad,
                &outcome,
            )
            .with_halo_policy(HaloPolicy::Degrade { timeout, fallback })
            .with_fault_plan(FaultPlan::loss_rate(rate, seed));
            let rollout = inf.rollout(&initial, steps).unwrap();
            let lost: u64 = rollout.traffic.iter().map(|t| t.halos_lost).sum();
            let zeroed: u64 = rollout.traffic.iter().map(|t| t.halos_zero_filled).sum();
            let stale: u64 = rollout.traffic.iter().map(|t| t.halos_stale).sum();
            let (mean, last) = score(&rollout.states);
            println!(
                "{:<10} {:>6.0} {:>8} {:>8} {:>6} {:>12.4e} {:>12.4e}",
                label,
                rate * 100.0,
                lost,
                zeroed,
                stale,
                mean,
                last
            );
            csv.row(&[
                label.into(),
                format!("{rate:.2}"),
                lost.to_string(),
                zeroed.to_string(),
                stale.to_string(),
                format!("{mean:.6e}"),
                format!("{last:.6e}"),
            ]);
        }
    }

    let out = results_path("halo_loss_sweep.csv").expect("results dir");
    csv.write_to(&out).expect("write CSV");
    println!("\nwrote {}", out.display());
}
