//! Experiment X1 — ablation of the §III padding strategies.
//!
//! The paper lists four ways to reconcile the conv stack's spatial shrink
//! with the target size and adopts zero padding and neighbor-data padding;
//! it argues inner-crop "would limit the usability of the output data".
//! This harness trains the same architecture under all three implemented
//! strategies at a fixed budget and reports validation error — quantifying
//! the trade-off the paper only discusses qualitatively.
//!
//! Environment overrides: `GRID`, `SNAPSHOTS`, `EPOCHS`, `RANKS`.
//!
//! Run with: `cargo run --release --example padding_ablation`
//! Writes `padding_ablation.csv` to the results dir (`$PDEML_RESULTS_DIR`,
//! default `results/`).

use pde_euler::dataset::paper_dataset;
use pde_ml_core::data::{extract_input, extract_target};
use pde_ml_core::metrics::field_errors;
use pde_ml_core::prelude::*;
use pde_ml_core::report::{results_path, Csv};
use pde_nn::serialize::restore;
use pde_nn::Layer;
use pde_tensor::Tensor4;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let grid = env_usize("GRID", 64);
    let snapshots = env_usize("SNAPSHOTS", 90);
    let epochs = env_usize("EPOCHS", 15);
    let ranks = env_usize("RANKS", 4);
    let train_pairs = snapshots * 2 / 3;

    println!(
        "padding-strategy ablation: {grid}x{grid}, {snapshots} snapshots, \
         {train_pairs} training pairs, {epochs} epochs, {ranks} ranks\n"
    );
    let data = paper_dataset(grid, snapshots);
    let (_, val) = data.chronological_split(train_pairs);
    let arch = ArchSpec::paper();
    let mut config = TrainConfig::paper();
    config.epochs = epochs;

    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>14}",
        "strategy", "train MAPE%", "val MAPE%", "val RMSE", "train time[s]"
    );
    let mut csv = Csv::new(&[
        "strategy",
        "train_mape",
        "val_mape",
        "val_rmse",
        "train_seconds",
    ]);

    for strategy in PaddingStrategy::ALL {
        let trainer = ParallelTrainer::new(arch.clone(), strategy, config.clone());
        let outcome = match trainer.train_view(&data, train_pairs, ranks) {
            Ok(o) => o,
            Err(e) => {
                println!("{:<14} skipped: {e}", strategy.label());
                continue;
            }
        };

        // Validation: mean single-step error across all validation pairs,
        // computed per rank on exactly the geometry the strategy trains
        // (so inner-crop is scored on its inner region — its best case).
        let part = outcome.partition;
        let halo = strategy.input_halo(arch.halo());
        let crop = strategy.target_crop(arch.halo());
        let mode = strategy.boundary_pad_mode();
        let mut nets: Vec<_> = outcome
            .rank_results
            .iter()
            .map(|r| {
                let mut n = arch.build_for(strategy, 0);
                restore(&mut n, &r.weights);
                n
            })
            .collect();

        let norm = &outcome.norm;
        let mut mape_sum = 0.0;
        let mut rmse_sum = 0.0;
        let mut count = 0usize;
        for k in 0..val.len() {
            let (x_global, y_global) = val.pair(k);
            for (r, net) in nets.iter_mut().enumerate() {
                let block = part.block_of_rank(r);
                let input = norm.normalize3(&extract_input(x_global, &block, halo, mode));
                let target = extract_target(y_global, &block, crop);
                let pred = norm.denormalize3(
                    &net.forward(&Tensor4::from_sample(&input), false)
                        .sample_tensor(0),
                );
                let errs = field_errors(&pred, &target, 1e-3);
                mape_sum += errs.iter().map(|e| e.mape).sum::<f64>() / errs.len() as f64;
                rmse_sum += errs.iter().map(|e| e.rmse).sum::<f64>() / errs.len() as f64;
                count += 1;
            }
        }
        let val_mape = mape_sum / count as f64;
        let val_rmse = rmse_sum / count as f64;
        let train_mape = outcome.mean_final_loss();
        println!(
            "{:<14} {:>12.2} {:>12.2} {:>12.3e} {:>14.2}",
            strategy.label(),
            train_mape,
            val_mape,
            val_rmse,
            outcome.wall_seconds
        );
        csv.row(&[
            strategy.label().to_string(),
            format!("{train_mape:.4}"),
            format!("{val_mape:.4}"),
            format!("{val_rmse:.6e}"),
            format!("{:.3}", outcome.wall_seconds),
        ]);
    }

    let out = results_path("padding_ablation.csv").expect("results dir");
    csv.write_to(&out).expect("write CSV");
    println!("\nwrote {}", out.display());
}
