//! Experiment F4 — reproduces **Fig. 4** of the paper: strong scalability
//! of the parallel training scheme up to 64 CPU cores.
//!
//! The paper measures wall time on a real 64-core machine. This harness
//! does the honest equivalent on whatever machine it runs on:
//!
//! 1. **Measure** the real per-rank training cost at several subdomain
//!    sizes (running the actual trainer), and fit the linear
//!    [`CostModel`] — the scheme is communication-free, so per-rank cost
//!    is the whole story.
//! 2. **Project** the strong-scaling curve `T(P)`, `P ∈ {1,4,16,64}`, for a
//!    64-core machine with the calibrated model (and, for contrast, for the
//!    core count of the current host).
//! 3. **Cross-check**: run the real multi-threaded trainer at small P and
//!    compare against the model's oversubscribed prediction.
//!
//! Environment overrides: `GRID` (default 128), `EPOCHS` (default 3),
//! `SNAPSHOTS` (default 12).
//!
//! Run with: `cargo run --release --example fig4_scaling`
//! Writes `fig4_scaling.csv` to the results dir (`$PDEML_RESULTS_DIR`,
//! default `results/`).

use pde_euler::dataset::paper_dataset;
use pde_ml_core::prelude::*;
use pde_ml_core::report::{results_path, Csv};
use pde_perfmodel::scaling::format_scaling_table;
use pde_perfmodel::{
    strong_scaling, strong_scaling_baseline, weak_scaling, CostModel, NetworkModel,
};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let grid = env_usize("GRID", 128);
    let epochs = env_usize("EPOCHS", 3);
    let snapshots = env_usize("SNAPSHOTS", 12);
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "Fig. 4 reproduction: {grid}x{grid} global grid, {epochs} epochs, \
         host has {host_cores} core(s)\n"
    );

    let arch = ArchSpec::paper();
    let mut config = TrainConfig::paper();
    config.epochs = epochs;
    let strategy = PaddingStrategy::ZeroPad; // identical per-layer geometry at every P

    // ---------------------------------------------------------------
    // 1. Calibrate: measure the real trainer at several subdomain sizes.
    //    (P ranks on a grid of side g ⇒ subdomain of g/√P; measuring one
    //    rank sequentially removes any time-sharing distortion.)
    // ---------------------------------------------------------------
    println!("calibrating per-rank cost (sequential single-rank runs):");
    let mut samples = Vec::new();
    for &side in &[grid / 8, grid / 4, grid / 2] {
        let data = paper_dataset(side, snapshots);
        let trainer = SequentialTrainer::new(arch.clone(), strategy, config.clone());
        let secs = trainer
            .train(&data, snapshots - 2)
            .expect("calibration run")
            .seconds;
        let cells = side * side;
        let per_epoch = secs / epochs as f64;
        println!("  {side:>4}x{side:<4} ({cells:>6} cells): {per_epoch:.4} s/epoch");
        samples.push((cells as f64, per_epoch));
    }
    let cost = CostModel::calibrate(&samples);
    println!(
        "fitted: {:.3e} s/cell/epoch + {:.3e} s/epoch overhead\n",
        cost.rate_s_per_cell, cost.overhead_s
    );

    // ---------------------------------------------------------------
    // 2. Project the Fig.-4 curve on a 64-core machine.
    // ---------------------------------------------------------------
    let cells = grid * grid;
    let ranks = [1usize, 2, 4, 8, 16, 32, 64];
    let curve64 = strong_scaling(&cost, cells, epochs, &ranks, 64);
    println!("projected strong scaling, 64-core machine (the paper's Fig. 4):");
    print!("{}", format_scaling_table(&curve64));

    // Baseline contrast: allreduce-averaging data parallelism on the same
    // machine and network.
    let net = NetworkModel::cluster_default();
    let weight_bytes = arch.param_count() * 8;
    let batches = |p: usize| {
        (snapshots - 2)
            .div_ceil(p)
            .div_ceil(config.batch_size)
            .max(1)
    };
    let base64 = strong_scaling_baseline(
        &cost,
        &net,
        cells,
        epochs,
        weight_bytes,
        batches,
        &ranks,
        64,
    );
    println!("\nallreduce baseline on the same machine (fast 10 GB/s fabric):");
    print!("{}", format_scaling_table(&base64));
    // With the paper's tiny 6k-parameter model a modern fabric makes the
    // allreduce almost free; the §I bottleneck argument bites on slower
    // interconnects (or bigger models), so show that series too.
    let slow_net = NetworkModel::new(50e-6, 8e-9); // 50 µs, ~1 Gb/s
    let base_slow = strong_scaling_baseline(
        &cost,
        &slow_net,
        cells,
        epochs,
        weight_bytes,
        batches,
        &ranks,
        64,
    );
    println!("\nallreduce baseline, commodity 1 Gb/s network:");
    print!("{}", format_scaling_table(&base_slow));

    // Weak scaling (extension): constant per-rank subdomain, growing domain.
    let cells_per_rank = (grid / 8) * (grid / 8);
    let weak = weak_scaling(&cost, cells_per_rank, epochs, &ranks, 64);
    println!("\nweak scaling (constant {cells_per_rank} cells/rank), 64-core machine:");
    print!("{}", format_scaling_table(&weak));

    // ---------------------------------------------------------------
    // 3. Cross-check the model against the real threaded trainer.
    // ---------------------------------------------------------------
    println!("\ncross-check: real threaded runs on this host ({host_cores} core(s)):");
    println!("{:>6} {:>14} {:>14}", "ranks", "measured[s]", "modelled[s]");
    let mut csv = Csv::new(&["series", "ranks", "seconds", "speedup", "efficiency"]);
    for p in &curve64 {
        csv.row(&[
            "scheme_64core_model".into(),
            p.ranks.to_string(),
            format!("{:.6}", p.seconds),
            format!("{:.3}", p.speedup),
            format!("{:.4}", p.efficiency),
        ]);
    }
    for p in &weak {
        csv.row(&[
            "scheme_weak_64core_model".into(),
            p.ranks.to_string(),
            format!("{:.6}", p.seconds),
            format!("{:.3}", p.speedup),
            format!("{:.4}", p.efficiency),
        ]);
    }
    for p in &base64 {
        csv.row(&[
            "baseline_64core_model".into(),
            p.ranks.to_string(),
            format!("{:.6}", p.seconds),
            format!("{:.3}", p.speedup),
            format!("{:.4}", p.efficiency),
        ]);
    }
    for p in &base_slow {
        csv.row(&[
            "baseline_slownet_model".into(),
            p.ranks.to_string(),
            format!("{:.6}", p.seconds),
            format!("{:.3}", p.speedup),
            format!("{:.4}", p.efficiency),
        ]);
    }

    let data = paper_dataset(grid, snapshots);
    let model_host = strong_scaling(&cost, cells, epochs, &[1, 2, 4], host_cores);
    for (i, &p) in [1usize, 2, 4].iter().enumerate() {
        let trainer = ParallelTrainer::new(arch.clone(), strategy, config.clone());
        let outcome = trainer
            .train_view(&data, snapshots - 2, p)
            .expect("threaded run");
        let measured = outcome.wall_seconds;
        let modelled = model_host[i].seconds;
        println!("{p:>6} {measured:>14.3} {modelled:>14.3}");
        csv.row(&[
            "measured_host".into(),
            p.to_string(),
            format!("{measured:.6}"),
            String::new(),
            String::new(),
        ]);
    }

    let out = results_path("fig4_scaling.csv").expect("results dir");
    csv.write_to(&out).expect("write CSV");
    println!("\nwrote {}", out.display());
}
