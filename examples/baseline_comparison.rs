//! Experiment X2 — the paper's scheme vs. the conventional data-parallel
//! baseline (Viviani et al., PDP 2019) it argues against in §I.
//!
//! Both train the same total workload; the comparison reports
//!
//! * wall-clock time,
//! * bytes communicated (the scheme: zero during training; the baseline:
//!   O(weights) per batch through the allreduce),
//! * final training loss and single-step validation error.
//!
//! Environment overrides: `GRID`, `SNAPSHOTS`, `EPOCHS`, `RANKS`.
//!
//! Run with: `cargo run --release --example baseline_comparison`
//! Writes `baseline_comparison.csv` to the results dir
//! (`$PDEML_RESULTS_DIR`, default `results/`).

use pde_euler::dataset::paper_dataset;
use pde_ml_core::baseline::DataParallelTrainer;
use pde_ml_core::metrics::mean_rmse;
use pde_ml_core::prelude::*;
use pde_ml_core::report::{results_path, Csv};
use pde_nn::serialize::restore;
use pde_nn::Layer;
use pde_tensor::Tensor4;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let grid = env_usize("GRID", 64);
    let snapshots = env_usize("SNAPSHOTS", 60);
    let epochs = env_usize("EPOCHS", 10);
    let ranks = env_usize("RANKS", 4);
    let train_pairs = snapshots * 2 / 3;

    println!(
        "scheme-vs-baseline: {grid}x{grid}, {train_pairs} training pairs, \
         {epochs} epochs, {ranks} ranks\n"
    );
    let data = paper_dataset(grid, snapshots);
    let (_, val) = data.chronological_split(train_pairs);
    let arch = ArchSpec::paper();
    let mut config = TrainConfig::paper();
    config.epochs = epochs;
    let strategy = PaddingStrategy::ZeroPad; // both sides share this geometry

    // --- The paper's scheme: one network per subdomain. ------------------
    let scheme = ParallelTrainer::new(arch.clone(), strategy, config.clone())
        .train_view(&data, train_pairs, ranks)
        .expect("scheme training");
    let scheme_infer = ParallelInference::from_outcome(arch.clone(), strategy, &scheme);
    let scheme_val = {
        let mut err = 0.0;
        for k in 0..val.len() {
            let (x, y) = val.pair(k);
            let r = scheme_infer.rollout(x, 1).unwrap();
            err += mean_rmse(&r.states[1], y);
        }
        err / val.len() as f64
    };

    // --- The Viviani baseline: replicated full-domain network. ------------
    let baseline = DataParallelTrainer::new(arch.clone(), strategy, config.clone())
        .train(&data, train_pairs, ranks)
        .expect("baseline training");
    let baseline_val = {
        let mut net = arch.build_for(strategy, config.seed);
        restore(&mut net, &baseline.weights);
        let mut err = 0.0;
        for k in 0..val.len() {
            let (x, y) = val.pair(k);
            let input = baseline.norm.normalize3(x);
            let pred = baseline.norm.denormalize3(
                &net.forward(&Tensor4::from_sample(&input), false)
                    .sample_tensor(0),
            );
            err += mean_rmse(&pred, y);
        }
        err / val.len() as f64
    };

    println!(
        "{:<22} {:>12} {:>16} {:>14} {:>12}",
        "method", "time[s]", "train bytes", "final loss", "val RMSE"
    );
    println!(
        "{:<22} {:>12.2} {:>16} {:>14.3} {:>12.3e}",
        "subdomain scheme",
        scheme.wall_seconds,
        scheme.total_bytes_sent(),
        scheme.mean_final_loss(),
        scheme_val
    );
    println!(
        "{:<22} {:>12.2} {:>16} {:>14.3} {:>12.3e}",
        "allreduce baseline",
        baseline.wall_seconds,
        baseline.total_bytes(),
        baseline.epoch_losses.last().unwrap(),
        baseline_val
    );

    let mut csv = Csv::new(&["method", "seconds", "bytes", "final_loss", "val_rmse"]);
    csv.row(&[
        "subdomain_scheme".into(),
        format!("{:.4}", scheme.wall_seconds),
        scheme.total_bytes_sent().to_string(),
        format!("{:.5}", scheme.mean_final_loss()),
        format!("{scheme_val:.6e}"),
    ]);
    csv.row(&[
        "allreduce_baseline".into(),
        format!("{:.4}", baseline.wall_seconds),
        baseline.total_bytes().to_string(),
        format!("{:.5}", baseline.epoch_losses.last().unwrap()),
        format!("{baseline_val:.6e}"),
    ]);
    let out = results_path("baseline_comparison.csv").expect("results dir");
    csv.write_to(&out).expect("write CSV");
    println!("\nwrote {}", out.display());
}
