//! Experiment F3 — reproduces **Fig. 3** of the paper: comparison of the
//! network prediction with the solver's target solution for pressure,
//! density and both velocity components, on a randomly chosen validation
//! snapshot; plus the §IV-B observation that accuracy drops under
//! multi-step rollout (accumulative error).
//!
//! Protocol (paper §IV-B/§IV-C): one simulation run produces all
//! snapshots; the first ⅔ of the pairs train, the rest validate. The paper
//! uses a 256×256 grid, 1500 snapshots, 1000 training steps; the default
//! here is scaled down to finish on a laptop core — set `PAPER_FULL=1` for
//! the full-size run.
//!
//! Environment overrides: `GRID`, `SNAPSHOTS`, `TRAIN_PAIRS`, `EPOCHS`,
//! `RANKS`, `SEED`.
//!
//! Run with: `cargo run --release --example fig3_accuracy`
//! Writes `fig3_fields.csv` (target/prediction/error maps) and
//! `fig3_rollout.csv` (error growth over prediction steps) to the results
//! dir (`$PDEML_RESULTS_DIR`, default `results/`).

use pde_euler::dataset::paper_dataset;
use pde_euler::state::FIELD_NAMES;
use pde_ml_core::metrics::{field_errors, format_error_table, rollout_error_curve};
use pde_ml_core::prelude::*;
use pde_ml_core::report::{results_path, Csv};
use pde_ml_core::train::PredictionMode;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let full = std::env::var("PAPER_FULL")
        .map(|v| v == "1")
        .unwrap_or(false);
    let grid = env_usize("GRID", if full { 256 } else { 64 });
    let snapshots = env_usize("SNAPSHOTS", if full { 1500 } else { 120 });
    let train_pairs = env_usize("TRAIN_PAIRS", if full { 1000 } else { snapshots * 2 / 3 });
    let epochs = env_usize("EPOCHS", if full { 50 } else { 20 });
    let ranks = env_usize("RANKS", 4);
    let seed = env_usize("SEED", 42) as u64;

    println!(
        "Fig. 3 reproduction: {grid}x{grid} grid, {snapshots} snapshots, \
         {train_pairs} training pairs, {epochs} epochs, {ranks} ranks"
    );

    // --- Data: single solver run, chronological split (paper protocol). --
    let data = paper_dataset(grid, snapshots);
    let (_train, val) = data.chronological_split(train_pairs);
    println!("validation pairs: {}", val.len());

    // --- Train the paper architecture with neighbor-data padding, in both
    //     prediction modes: Absolute (the paper's formulation) and Residual
    //     (the recommended extension — ablation X5). -----------------------
    let arch = ArchSpec::paper();
    let strategy = PaddingStrategy::NeighborPad;
    let mut rng = StdRng::seed_from_u64(seed);
    let k = rng.gen_range(0..val.len().saturating_sub(1).max(1));
    let (input, target) = val.pair(k);
    let horizon = val.len().min(10);
    let (start, _) = val.pair(0);
    let reference: Vec<_> = (0..=horizon)
        .map(|s| data.snapshot(val.global_index(0) + s).clone())
        .collect();

    let mut fields = Csv::new(&[
        "mode",
        "field",
        "i",
        "j",
        "target",
        "prediction",
        "abs_error",
    ]);
    let mut roll = Csv::new(&["mode", "step", "mean_rmse"]);

    for mode in [PredictionMode::Absolute, PredictionMode::Residual] {
        let mut config = TrainConfig::paper();
        config.epochs = epochs;
        config.seed = seed;
        config.prediction = mode;
        let outcome = ParallelTrainer::new(arch.clone(), strategy, config)
            .train_view(&data, train_pairs, ranks)
            .expect("training");
        println!(
            "\n== {} mode: trained in {:.1}s wall, mean final MAPE {:.2}%, \
             training bytes sent: {}",
            mode.label(),
            outcome.wall_seconds,
            outcome.mean_final_loss(),
            outcome.total_bytes_sent()
        );

        // Single-step prediction on the chosen validation snapshot.
        let inference = ParallelInference::from_outcome(arch.clone(), strategy, &outcome);
        let one = inference.rollout(input, 1).unwrap();
        let pred = &one.states[1];
        println!(
            "validation pair {k} (global snapshot {}):",
            val.global_index(k)
        );
        println!("{}", format_error_table(&field_errors(pred, target, 1e-3)));

        // Field maps CSV (Fig. 3's panels: target, prediction, |error|).
        for (c, name) in FIELD_NAMES.iter().enumerate() {
            for i in 0..target.h() {
                for j in 0..target.w() {
                    let t = target[(c, i, j)];
                    let p = pred[(c, i, j)];
                    fields.row(&[
                        mode.label().to_string(),
                        name.to_string(),
                        i.to_string(),
                        j.to_string(),
                        format!("{t:.6e}"),
                        format!("{p:.6e}"),
                        format!("{:.6e}", (p - t).abs()),
                    ]);
                }
            }
        }

        // Multi-step rollout: the accumulative-error effect (§IV-B).
        let rollout = inference.rollout(start, horizon).unwrap();
        let curve = rollout_error_curve(&rollout.states, &reference);
        println!("rollout error growth (mean RMSE per step):");
        for (s, e) in curve.iter().enumerate() {
            println!("  step {s}: {e:.4e}");
            roll.row(&[mode.label().to_string(), s.to_string(), format!("{e:.6e}")]);
        }
        println!(
            "{} boundary-exchange bytes during the {horizon}-step rollout",
            rollout.total_bytes()
        );
    }

    let fields_out = results_path("fig3_fields.csv").expect("results dir");
    let roll_out = results_path("fig3_rollout.csv").expect("results dir");
    fields.write_to(&fields_out).expect("write fields CSV");
    roll.write_to(&roll_out).expect("write rollout CSV");
    println!(
        "\nwrote {} and {}",
        fields_out.display(),
        roll_out.display()
    );
}
