//! Quickstart: the whole pipeline in ~60 lines.
//!
//! 1. Solve the linearized Euler equations (Gaussian pressure pulse) to
//!    generate training snapshots — the paper's §IV-A setup at a small
//!    resolution so this runs in seconds.
//! 2. Decompose the domain over 4 ranks and train one CNN per subdomain in
//!    parallel, with zero communication (we print the counters as proof).
//! 3. Run a parallel rollout with point-to-point halo exchange and compare
//!    the one-step prediction against the solver.
//!
//! Run with: `cargo run --release --example quickstart`

use pde_euler::dataset::paper_dataset;
use pde_ml_core::metrics::{field_errors, format_error_table};
use pde_ml_core::prelude::*;
use pde_ml_core::train::{LossKind, OptimizerKind, PredictionMode};

fn main() {
    // --- 1. Data generation (32×32 grid, 40 snapshots). -----------------
    let n = 32;
    let data = paper_dataset(n, 40);
    println!(
        "generated {} snapshots of a {n}x{n} linearized-Euler run",
        data.len()
    );
    let n_train = 30; // chronological split like the paper's 1000/500

    // --- 2. Parallel training: 4 ranks, one CNN each. -------------------
    let arch = ArchSpec::tiny(); // 2 conv layers; use ArchSpec::paper() on larger grids
    let config = TrainConfig {
        epochs: 40,
        batch_size: 8,
        lr: 2e-3,
        schedule: None,
        optimizer: OptimizerKind::Adam,
        loss: LossKind::Mape { floor: 1e-3 },
        shuffle: true,
        normalize: true,
        prediction: PredictionMode::Residual,
        grad_clip: None,
        window: 1,
        seed: 7,
        threads_per_rank: None,
    };
    let trainer = ParallelTrainer::new(arch.clone(), PaddingStrategy::NeighborPad, config);
    let outcome = trainer.train_view(&data, n_train, 4).expect("training");
    println!(
        "trained 4 subdomain networks in {:.2}s (mean final MAPE loss {:.2})",
        outcome.wall_seconds,
        outcome.mean_final_loss()
    );
    println!(
        "bytes communicated during training: {} (the paper's headline property)",
        outcome.total_bytes_sent()
    );

    // --- 3. Parallel inference with halo exchange. -----------------------
    let inference = ParallelInference::from_outcome(arch, PaddingStrategy::NeighborPad, &outcome);
    let initial = data.snapshot(n_train).clone(); // first validation state
    let rollout = inference.rollout(&initial, 1).unwrap();
    println!(
        "1-step parallel rollout exchanged {} bytes of boundary data",
        rollout.total_bytes()
    );

    let target = data.snapshot(n_train + 1);
    let errs = field_errors(&rollout.states[1], target, 1e-3);
    println!("\nprediction vs solver, one step ahead:");
    print!("{}", format_error_table(&errs));
}
