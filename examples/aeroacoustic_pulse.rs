//! Domain-scenario example: an aeroacoustics study with the full pipeline.
//!
//! The paper motivates the scheme with aeroacoustic simulations (§IV). This
//! example plays the role of a practitioner's workflow:
//!
//! 1. simulate a Gaussian pressure pulse (the paper's test case) *and* an
//!    off-center double-pulse variant the network never saw structured this
//!    way,
//! 2. train subdomain networks on the single-pulse run,
//! 3. use them as a surrogate on both initial conditions and report how far
//!    the surrogate can be trusted (single-step vs. rollout, in-distribution
//!    vs. out-of-distribution).
//!
//! Run with: `cargo run --release --example aeroacoustic_pulse`
//! Writes `aeroacoustic_pulse.csv` to the results dir
//! (`$PDEML_RESULTS_DIR`, default `results/`).

use pde_euler::{dataset::SnapshotRecorder, Boundary, InitialCondition, SolverConfig};
use pde_ml_core::metrics::{field_errors, format_error_table, rollout_error_curve};
use pde_ml_core::prelude::*;
use pde_ml_core::report::{results_path, Csv};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let grid = env_usize("GRID", 64);
    let snapshots = env_usize("SNAPSHOTS", 90);
    let epochs = env_usize("EPOCHS", 20);
    let ranks = env_usize("RANKS", 4);
    let train_pairs = snapshots * 2 / 3;
    let horizon = 8;

    // --- 1. Two simulations. ---------------------------------------------
    let cfg = SolverConfig::paper(grid, grid);
    let centered =
        SnapshotRecorder::new(cfg, Boundary::Outflow, &InitialCondition::paper_pulse(), 1)
            .record(snapshots);
    let double_ic =
        InitialCondition::MultiPulse(vec![(-0.4, -0.3, 0.25, 0.4), (0.5, 0.4, 0.2, 0.3)]);
    let double = SnapshotRecorder::new(cfg, Boundary::Outflow, &double_ic, 1).record(horizon + 1);

    // --- 2. Train on the centered pulse only. ----------------------------
    let arch = ArchSpec::paper();
    let mut config = TrainConfig::paper_residual();
    config.epochs = epochs;
    let strategy = PaddingStrategy::NeighborPad;
    let outcome = ParallelTrainer::new(arch.clone(), strategy, config)
        .train_view(&centered, train_pairs, ranks)
        .expect("training");
    println!(
        "trained {ranks} subdomain networks on the centered pulse \
         ({:.1}s, mean final MAPE {:.2}%)\n",
        outcome.wall_seconds,
        outcome.mean_final_loss()
    );
    let inference = ParallelInference::from_outcome(arch, strategy, &outcome);

    // --- 3a. In-distribution single step (validation regime). ------------
    let (_, val) = centered.chronological_split(train_pairs);
    let (x, y) = val.pair(val.len() / 2);
    let one = inference.rollout(x, 1).unwrap();
    println!("in-distribution single-step prediction:");
    print!(
        "{}",
        format_error_table(&field_errors(&one.states[1], y, 1e-3))
    );

    // --- 3b. In-distribution rollout (the accumulative-error regime). ----
    let (start, _) = val.pair(0);
    let roll = inference.rollout(start, horizon).unwrap();
    let reference: Vec<_> = (0..=horizon)
        .map(|s| centered.snapshot(val.global_index(0) + s).clone())
        .collect();
    let curve_in = rollout_error_curve(&roll.states, &reference);

    // --- 3c. Out-of-distribution: double pulse. ---------------------------
    let roll_ood = inference.rollout(double.snapshot(0), horizon).unwrap();
    let reference_ood: Vec<_> = (0..=horizon).map(|s| double.snapshot(s).clone()).collect();
    let curve_ood = rollout_error_curve(&roll_ood.states, &reference_ood);

    println!("\nrollout mean-RMSE per step (in-distribution vs out-of-distribution):");
    println!(
        "{:>6} {:>16} {:>16}",
        "step", "centered pulse", "double pulse"
    );
    let mut csv = Csv::new(&["step", "rmse_in_distribution", "rmse_double_pulse"]);
    for s in 0..=horizon {
        println!("{s:>6} {:>16.4e} {:>16.4e}", curve_in[s], curve_ood[s]);
        csv.row_f64(&[s as f64, curve_in[s], curve_ood[s]]);
    }

    let out = results_path("aeroacoustic_pulse.csv").expect("results dir");
    csv.write_to(&out).expect("write CSV");
    println!(
        "\nwrote {} — note the error growth with horizon (paper §IV-B); compare the \
         two columns relative to each run's own field scale (the double pulse is \
         weaker, so equal-looking absolute errors mean a larger relative \
         out-of-distribution penalty)",
        out.display()
    );
}
